/**
 * @file
 * Full-system assembly and experiment drivers.
 *
 * runSingleCore() builds one complete simulated machine — physical
 * memory with a conditioned buddy allocator, an address space under
 * the requested paging policy, TLBs, the L1 under a chosen indexing
 * policy, the lower hierarchy, DRAM, and a core model — runs one
 * named application on it, and returns the metrics every figure of
 * the paper is built from.
 *
 * runMulticore() instantiates four such cores over a shared LLC,
 * DRAM, and physical allocator (Tab. III mixes, Fig. 15).
 */

#ifndef SIPT_SIM_SYSTEM_HH
#define SIPT_SIM_SYSTEM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cpu/core.hh"
#include "energy/accounting.hh"
#include "sim/presets.hh"
#include "sipt/l1_cache.hh"
#include "vm/mmu.hh"

namespace sipt::sim
{

/** Physical-memory operating condition (Sec. VII-B / Fig. 18). */
enum class MemCondition : std::uint8_t
{
    Normal,       ///< aged machine, weeks of uptime
    Fragmented,   ///< unusable-free-space index Fu(9) > 0.95
    ThpOff,       ///< transparent huge pages disabled
    NoContiguity, ///< every 4 KiB page placed at random
};

/** Printable condition name. */
const char *conditionName(MemCondition condition);

/**
 * Parse a CLI condition token: "normal", "fragmented", "thp-off",
 * "no-contig" (case-insensitive). nullopt for anything else.
 */
std::optional<MemCondition>
conditionFromName(std::string_view name);

/**
 * Default warmup references per run; reads the SIPT_WARMUP
 * environment variable so CI smoke runs can shrink warmup the
 * same way SIPT_REFS shrinks measurement.
 */
std::uint64_t defaultWarmupRefs();

/**
 * Which access-pipeline engine executes a run. The batched engine
 * (src/batch) and the scalar reference loop are bit-identical in
 * every result — stats, energy, metrics, SIPT_CHECK digest —
 * which is enforced by tests/test_batch.cpp and by the fuzzer
 * flipping engines per sample. Because the choice can never
 * influence a result, it is deliberately EXCLUDED from the
 * run-cache key (SystemConfig::operator== / hashValue).
 */
enum class EngineSelect : std::uint8_t
{
    /** Follow the SIPT_BATCH environment variable: unset or any
     *  value but "0" selects the batched engine. */
    Auto,
    /** Force the scalar reference loop. */
    Scalar,
    /** Force the batched engine (still falls back to scalar for
     *  radix-walker configs, whose translation latency depends on
     *  the issue cycle). */
    Batch,
};

/** One experiment's system description. */
struct SystemConfig
{
    /** Core + hierarchy depth: true = OOO/3-level (Tab. II left),
     *  false = in-order/2-level. */
    bool outOfOrder = true;
    L1Config l1Config = L1Config::Baseline32K8;
    /** Override the preset's L1 capacity (0 = keep the preset).
     *  Used by the fuzzer to sample arbitrary geometries. */
    std::uint64_t l1SizeBytes = 0;
    /** Override the preset's L1 associativity (0 = keep). */
    std::uint32_t l1Assoc = 0;
    /** Override the preset's L1 hit latency (0 = keep). */
    Cycles l1HitLatency = 0;
    IndexingPolicy policy = IndexingPolicy::Vipt;
    /** Override the translation-value predictor table entries of
     *  the Revelator / Pcax policies (0 = keep the L1Params
     *  defaults). Power of two; used by the fuzzer and the
     *  sensitivity sweeps. */
    std::uint32_t xlatPredEntries = 0;
    bool wayPrediction = false;
    /**
     * Model page walks as dependent PTE reads through the cache
     * hierarchy (radix walker + page-walk caches) instead of the
     * default constant walk latency.
     */
    bool radixWalker = false;
    MemCondition condition = MemCondition::Normal;
    /** Simulated physical memory (scaled from the paper's 16 GiB
     *  to keep sweeps fast; page-granular behaviour unchanged). */
    std::uint64_t physMemBytes = 4ull << 30;
    /** References to run before statistics reset. */
    std::uint64_t warmupRefs = defaultWarmupRefs();
    /** References measured. */
    std::uint64_t measureRefs = 400'000;
    std::uint64_t seed = 42;
    /** Scale factor applied to application footprints (used by
     *  the multicore driver to co-fit four apps). */
    double footprintScale = 1.0;
    /**
     * Force differential golden-model checking for this run, in
     * addition to the SIPT_CHECK environment gate (the fuzzer sets
     * this so RunResult::checkDigest is always populated). Part of
     * the run-cache key because it changes the result payload.
     */
    bool check = false;
    /**
     * Access-pipeline engine. NOT part of the run-cache key: both
     * engines are bit-identical, so a cached result serves either
     * (the fuzzer relies on this to flip engines without losing
     * cross-sample memoisation).
     */
    // sipt-analyze: key-exempt(serves both engines)
    EngineSelect engine = EngineSelect::Auto;

    /**
     * Equality over every result-influencing field; together with
     * hashValue() this makes a config usable as a run-cache key,
     * so every field that influences simulation results MUST
     * participate here. `engine` is the one deliberate exception
     * (see EngineSelect) — which is why this cannot be a defaulted
     * comparison. tests/test_config_key.cpp walks the fields and
     * asserts both the participation and the exception.
     */
    bool
    operator==(const SystemConfig &other) const
    {
        return outOfOrder == other.outOfOrder &&
               l1Config == other.l1Config &&
               l1SizeBytes == other.l1SizeBytes &&
               l1Assoc == other.l1Assoc &&
               l1HitLatency == other.l1HitLatency &&
               policy == other.policy &&
               xlatPredEntries == other.xlatPredEntries &&
               wayPrediction == other.wayPrediction &&
               radixWalker == other.radixWalker &&
               condition == other.condition &&
               physMemBytes == other.physMemBytes &&
               warmupRefs == other.warmupRefs &&
               measureRefs == other.measureRefs &&
               seed == other.seed &&
               footprintScale == other.footprintScale &&
               check == other.check;
    }
};

/** Hash over every SystemConfig field except `engine` (run-cache
 *  key; see EngineSelect for why engine is excluded). */
std::size_t hashValue(const SystemConfig &config);

/** Metrics from one application run. */
struct RunResult
{
    std::string app;
    double ipc = 0.0;
    double cycles = 0.0;
    InstCount instructions = 0;
    L1Stats l1;
    double l1HitRate = 0.0;
    /** Fraction of accesses completing without waiting for the
     *  TLB (the paper's "fast accesses"). */
    double fastFraction = 0.0;
    energy::EnergyBreakdown energy;
    /** Fraction of the app's memory that is THP-backed. */
    double hugeCoverage = 0.0;
    /** MRU way-prediction accuracy (0 when disabled). */
    double wayPredAccuracy = 0.0;
    double dtlbHitRate = 0.0;
    std::uint64_t pageWalks = 0;
    /** L1 misses per kilo-instruction. */
    double l1Mpki = 0.0;
    /** Stable digest of the measured-phase functional event
     *  stream (0 unless SIPT_CHECK was on). Policy-invariant:
     *  every indexing policy must produce the same digest for the
     *  same (app, geometry, workload). */
    std::uint64_t checkDigest = 0;
    /** Events behind checkDigest (0 unless SIPT_CHECK). */
    std::uint64_t checkEvents = 0;
    /** First golden-model divergence, invariant violation, TLB
     *  mismatch, or writeback-shim failure; empty when clean. */
    std::string checkFailure;
    /** VIVT strawman bookkeeping over the measured phase (all 0
     *  unless SIPT_CHECK was on): reverse-map probes a virtually
     *  tagged L1 would have issued on virtual-tag misses... */
    std::uint64_t vivtReverseProbes = 0;
    /** ...the synonym invalidations those probes triggered (same
     *  physical line cached under another virtual name)... */
    std::uint64_t vivtInvalidations = 0;
    /** ...and how many displaced copies were dirty, forcing a
     *  data forward. SIPT's physical tags make all three zero-cost
     *  non-events; the counters quantify the avoided machinery and
     *  never affect digests or failures. */
    std::uint64_t vivtDirtyForwards = 0;
};

/**
 * Default measured references per run; reads the SIPT_REFS
 * environment variable so CI can shrink experiments.
 */
std::uint64_t defaultMeasureRefs();

/** Run one application on one system. */
RunResult runSingleCore(const std::string &app,
                        const SystemConfig &config);

/**
 * True when @p app names a recorded trace instead of a synthetic
 * profile: "trace:<path>". Trace apps are accepted everywhere an
 * app name is (runSingleCore, runMulticore mixes, the sweep
 * engine), replaying the file's recorded reference stream and
 * VA->PA layout through the full pipeline.
 */
bool isTraceApp(const std::string &app);

/** The file path behind a "trace:<path>" app name. */
std::string traceAppPath(const std::string &app);

/**
 * Record @p app's reference stream to a trace file at @p path:
 * condition memory and build the workload exactly as
 * runSingleCore() would (same seeds, same allocation phase), then
 * capture warmupRefs+measureRefs references plus the VA->PA
 * layout. Replaying the file under the same SystemConfig is
 * digest-identical to the live run. Fatal when @p app is itself a
 * trace app or the file cannot be written.
 */
void recordTrace(const std::string &app,
                 const SystemConfig &config,
                 const std::string &path);

/** Result of a quad-core multiprogrammed run. */
struct MulticoreResult
{
    std::vector<RunResult> perCore;
    /** Sum of per-core IPCs (the paper's throughput metric). */
    double sumIpc = 0.0;
    /** Total cache-hierarchy energy across all cores + LLC. */
    energy::EnergyBreakdown energy;
};

/**
 * Run a multiprogrammed mix, one application per core, over a
 * shared LLC/DRAM/physical memory. Cores advance in small
 * time-slices so shared-resource contention is interleaved.
 */
MulticoreResult runMulticore(const std::vector<std::string> &mix,
                             const SystemConfig &config);

} // namespace sipt::sim

#endif // SIPT_SIM_SYSTEM_HH
