/**
 * @file
 * Seeded config/workload fuzzer for the policy-invariance oracle.
 *
 * A fuzz campaign is a pure function of one master seed: sample
 * #i deterministically derives an L1 geometry (8-64 KiB, 1-8 way,
 * 0-3 speculative bits), a fragmentation/THP memory condition, and
 * a synthetic workload, then runs it under every feasible indexing
 * policy through the sweep engine with golden-model checking on.
 * All policies must report a clean checker and byte-identical
 * functional event digests; any disagreement prints a one-line
 * repro (master seed + sample index + config JSON) that
 * `sipt-fuzz --repro` replays exactly.
 */

#ifndef SIPT_SIM_FUZZ_HH
#define SIPT_SIM_FUZZ_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "sim/system.hh"
#include "sipt/l1_cache.hh"

namespace sipt::sim
{

/** One fully specified fuzz sample (policy chosen per run). */
struct FuzzSample
{
    std::uint64_t masterSeed = 0;
    std::uint64_t index = 0;
    std::string app;
    sim::SystemConfig config;
};

/**
 * Deterministically derive sample @p index of the campaign seeded
 * by @p master_seed. Stable across processes and platforms (the
 * derivation uses only the project Rng).
 */
FuzzSample sampleAt(std::uint64_t master_seed,
                    std::uint64_t index);

/**
 * The indexing policies runnable on @p config: all five when the
 * geometry is VIPT-feasible, otherwise all but VIPT (whose
 * constructor rejects speculative bits by design).
 */
std::vector<IndexingPolicy>
policiesFor(const sim::SystemConfig &config);

/** Verdict for one sample across all its policies. */
struct SampleResult
{
    bool passed = true;
    /** Description of the first divergence (empty when passed). */
    std::string failure;
    /** Machine-parseable repro line (empty when passed). */
    std::string repro;
};

/** Run @p sample under every feasible policy and diff the
 *  functional digests; jobs execute on @p runner's pool. */
SampleResult runSample(const FuzzSample &sample,
                       sim::SweepRunner &runner);

/**
 * Run samples [0, @p count) of @p master_seed. Failures print
 * their repro line to @p out as they are found.
 *
 * @return the number of failing samples
 */
std::uint64_t runCampaign(std::uint64_t master_seed,
                          std::uint64_t count,
                          sim::SweepRunner &runner,
                          std::ostream &out);

/**
 * Extract (seed, index) from a repro line as printed by
 * runCampaign()/reproLine().
 *
 * @return false when @p line is not a repro line
 */
bool parseRepro(const std::string &line, std::uint64_t &seed_out,
                std::uint64_t &index_out);

/** The repro line for @p sample (also what failures print). */
std::string reproLine(const FuzzSample &sample);

} // namespace sipt::sim

#endif // SIPT_SIM_FUZZ_HH
