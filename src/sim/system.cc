#include "sim/system.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string_view>

#include "batch/pipeline.hh"
#include "common/env.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "dram/dram.hh"
#include "os/address_space.hh"
#include "os/buddy_allocator.hh"
#include "os/fragmenter.hh"
#include "os/shared_segment.hh"
#include "workload/profile.hh"
#include "workload/synonym.hh"
#include "workload/synthetic.hh"
#include "workload/trace_record.hh"
#include "workload/trace_replay.hh"

namespace sipt::sim
{

namespace
{

/** Allocator churn applied for the "weeks of uptime" baseline. */
constexpr std::uint64_t agingChurnOps = 20'000;
constexpr double agingResidentFraction = 0.22;

/** Glue: MMU + L1 behind the core's memory port. */
class SystemPort : public cpu::MemPort
{
  public:
    SystemPort(vm::Mmu &mmu, const vm::PageTable &page_table,
               SiptL1Cache &l1)
        : mmu_(mmu), pageTable_(page_table), l1_(l1),
          check_(l1.params().check)
    {
    }

    Cycles
    access(const MemRef &ref, Cycles now, bool &miss_out) override
    {
        const vm::MmuResult xlat =
            mmu_.translate(ref.vaddr, pageTable_, now);
        if (check_.enabled)
            checkTranslation(ref.vaddr, xlat.paddr);
        const L1AccessResult res = l1_.access(ref, xlat, now);
        miss_out = !res.hit;
        return res.latency;
    }

    /** First golden-TLB mismatch, or empty. */
    const std::string &checkFailure() const { return failure_; }

  private:
    /**
     * Golden-TLB check: whatever the timed MMU (TLB hierarchy +
     * walker) returned must equal an untimed page-table walk —
     * TLB state may only affect latency, never the translation.
     */
    void
    checkTranslation(Addr vaddr, Addr paddr)
    {
        const auto golden = pageTable_.translate(vaddr);
        std::string error;
        if (!golden) {
            error = detail::formatMessage(
                "MMU translated unmapped va 0x", std::hex, vaddr);
        } else if (golden->paddr != paddr) {
            error = detail::formatMessage(
                "TLB divergence at va 0x", std::hex, vaddr,
                ": MMU pa 0x", paddr, ", page table pa 0x",
                golden->paddr);
        }
        if (error.empty())
            return;
        if (check_.abortOnDivergence)
            panic("SIPT_CHECK: ", error);
        if (failure_.empty())
            failure_ = error;
    }

    vm::Mmu &mmu_;
    const vm::PageTable &pageTable_;
    SiptL1Cache &l1_;
    check::Options check_;
    std::string failure_;
};

/** PTE reads of the radix walker go through the hierarchy. */
class WalkThroughCaches : public vm::WalkPort
{
  public:
    explicit WalkThroughCaches(cache::BelowL1 &below)
        : below_(below)
    {
    }

    Cycles
    walkRead(Addr paddr, Cycles now) override
    {
        return below_.fill(paddr, now);
    }

  private:
    cache::BelowL1 &below_;
};

/** Everything one core owns. */
struct CoreInstance
{
    std::unique_ptr<os::AddressSpace> as;
    std::unique_ptr<cpu::TraceSource> workload;
    std::unique_ptr<vm::Mmu> mmu;
    std::unique_ptr<cache::BelowL1> below;
    std::unique_ptr<SiptL1Cache> l1;
    std::unique_ptr<cpu::TraceCore> core;
    std::unique_ptr<SystemPort> port;
    std::unique_ptr<WalkThroughCaches> walkPort;
    std::unique_ptr<vm::PageWalker> walker;
    /** Batched engine when selected; scalar run() otherwise. */
    std::unique_ptr<batch::BatchPipeline> pipeline;
    cpu::CoreResult measured;

    /** Run refs through whichever engine this core uses. */
    cpu::CoreResult
    run(std::uint64_t max_refs)
    {
        return pipeline ? pipeline->run(max_refs)
                        : core->run(*workload, *port, max_refs);
    }
};

/**
 * Resolve the engine for a config. Radix-walker configs always
 * take the scalar path: walk latency depends on the issue cycle,
 * which the batched translate stage does not know yet.
 */
bool
useBatchEngine(const SystemConfig &config)
{
    if (config.radixWalker)
        return false;
    switch (config.engine) {
      case EngineSelect::Scalar:
        return false;
      case EngineSelect::Batch:
        return true;
      case EngineSelect::Auto:
        break;
    }
    const char *env = std::getenv("SIPT_BATCH");
    return env == nullptr || std::string_view(env) != "0";
}

os::PagingPolicy
policyFor(const SystemConfig &config, double thp_affinity)
{
    os::PagingPolicy pol;
    switch (config.condition) {
      case MemCondition::Normal:
      case MemCondition::Fragmented:
        pol.thpEnabled = true;
        pol.thpChance = thp_affinity;
        break;
      case MemCondition::ThpOff:
        pol.thpEnabled = false;
        break;
      case MemCondition::NoContiguity:
        pol.thpEnabled = false;
        pol.randomPlacement = true;
        break;
    }
    return pol;
}

CoreInstance
buildCore(const SystemConfig &config, const std::string &app,
          os::BuddyAllocator &buddy, cache::TimingCache &llc,
          dram::Dram &dram, std::uint64_t seed,
          const os::SharedSegment *shared = nullptr)
{
    CoreInstance inst;
    if (isTraceApp(app)) {
        // Replay: the trace supplies the layout and mapping, so
        // the paging policy and footprint scale are moot (no
        // demand fault ever fires).
        inst.as = std::make_unique<os::AddressSpace>(
            buddy, policyFor(config, 0.0), seed + 1);
        inst.workload =
            std::make_unique<workload::TraceReplaySource>(
                traceAppPath(app), *inst.as, /*loop=*/true);
    } else if (workload::isSynonymApp(app)) {
        // Multi-mapping scenarios: mmapAlias/mmapCow need
        // small-mapped sources, so THP stays off for these
        // regardless of condition. Footprints are fixed (no
        // scaling): a few hundred KiB against gigabytes.
        inst.as = std::make_unique<os::AddressSpace>(
            buddy, policyFor(config, 0.0), seed + 1);
        inst.workload =
            std::make_unique<workload::SynonymWorkload>(
                workload::synonymSpec(app), *inst.as, seed + 2,
                shared);
    } else {
        workload::AppProfile profile = workload::appProfile(app);
        profile.footprintBytes = static_cast<std::uint64_t>(
            static_cast<double>(profile.footprintBytes) *
            config.footprintScale);
        inst.as = std::make_unique<os::AddressSpace>(
            buddy, policyFor(config, profile.thpAffinity),
            seed + 1);
        inst.workload =
            std::make_unique<workload::SyntheticWorkload>(
                profile, *inst.as, seed + 2);
    }
    inst.mmu = std::make_unique<vm::Mmu>(mmuPreset());

    const cache::TimingCacheParams l2 = l2Preset();
    inst.below = std::make_unique<cache::BelowL1>(
        config.outOfOrder ? &l2 : nullptr, llc, dram);
    L1Params l1_params = l1Preset(config.l1Config, config.policy,
                                  config.wayPrediction);
    // Fuzzer geometry overrides (0 = keep the preset value).
    if (config.l1SizeBytes != 0)
        l1_params.geometry.sizeBytes = config.l1SizeBytes;
    if (config.l1Assoc != 0)
        l1_params.geometry.assoc = config.l1Assoc;
    if (config.l1HitLatency != 0)
        l1_params.hitLatency = config.l1HitLatency;
    if (config.xlatPredEntries != 0) {
        l1_params.hashedXlat.entries = config.xlatPredEntries;
        l1_params.pcXlat.entries = config.xlatPredEntries;
    }
    if (config.check)
        l1_params.check.enabled = true;
    inst.l1 = std::make_unique<SiptL1Cache>(l1_params,
                                            *inst.below);
    inst.core = std::make_unique<cpu::TraceCore>([&] {
        cpu::CoreParams p = config.outOfOrder
                                ? cpu::outOfOrderCoreParams()
                                : cpu::inOrderCoreParams();
        p.seed = seed + 3;
        return p;
    }());
    inst.port = std::make_unique<SystemPort>(
        *inst.mmu, inst.as->pageTable(), *inst.l1);
    if (config.radixWalker) {
        inst.walkPort =
            std::make_unique<WalkThroughCaches>(*inst.below);
        inst.walker = std::make_unique<vm::PageWalker>(
            vm::WalkerParams{}, *inst.walkPort);
        inst.mmu->setWalker(inst.walker.get());
    }
    if (useBatchEngine(config)) {
        inst.pipeline = std::make_unique<batch::BatchPipeline>(
            *inst.workload, *inst.mmu, inst.as->pageTable(),
            *inst.l1, *inst.core);
    }
    return inst;
}

void
resetCoreStats(CoreInstance &inst)
{
    inst.l1->resetStats();
    inst.below->resetStats();
    inst.mmu->resetStats();
}

RunResult
collect(const std::string &app, const SystemConfig &config,
        const CoreInstance &inst, double llc_dyn_share,
        double llc_static_share_mw, double seconds)
{
    RunResult r;
    r.app = app;
    r.cycles = inst.measured.cycles;
    r.instructions = inst.measured.instructions;
    r.ipc = inst.measured.ipc();
    r.l1 = inst.l1->stats();
    r.l1HitRate = inst.l1->hitRate();
    r.fastFraction = inst.l1->fastFraction();
    r.hugeCoverage = inst.as->hugeCoverage();
    r.energy = energy::computeEnergy(
        *inst.l1, *inst.below, llc_dyn_share,
        llc_static_share_mw, seconds);
    if (const auto *wp = inst.l1->wayPredictor())
        r.wayPredAccuracy = wp->accuracy();
    const auto &small = inst.mmu->l1Small();
    const auto &huge = inst.mmu->l1Huge();
    const std::uint64_t tlb_lookups = small.hits() +
                                      small.misses() +
                                      huge.hits() + huge.misses();
    r.dtlbHitRate =
        tlb_lookups ? static_cast<double>(small.hits() +
                                          huge.hits()) /
                          static_cast<double>(tlb_lookups)
                    : 0.0;
    r.pageWalks = inst.mmu->walks();
    r.l1Mpki = r.instructions
                   ? 1000.0 *
                         static_cast<double>(r.l1.misses) /
                         static_cast<double>(r.instructions)
                   : 0.0;
    r.checkDigest = inst.l1->checkDigest();
    r.checkEvents = inst.l1->checkEventCount();
    // The first failure wins, whichever layer saw it.
    r.checkFailure = inst.l1->checkFailure();
    if (r.checkFailure.empty() && inst.below->fillTracker())
        r.checkFailure = inst.below->fillTracker()->failure();
    if (r.checkFailure.empty() && inst.port)
        r.checkFailure = inst.port->checkFailure();
    if (r.checkFailure.empty() && inst.pipeline)
        r.checkFailure = inst.pipeline->checkFailure();
    if (const auto *checker = inst.l1->checker()) {
        const auto &vivt = checker->vivt().stats();
        r.vivtReverseProbes = vivt.reverseMapProbes;
        r.vivtInvalidations = vivt.synonymInvalidations;
        r.vivtDirtyForwards = vivt.dirtyForwards;
    }
    (void)config;
    return r;
}

} // namespace

const char *
conditionName(MemCondition condition)
{
    switch (condition) {
      case MemCondition::Normal:
        return "Normal";
      case MemCondition::Fragmented:
        return "Fragmented";
      case MemCondition::ThpOff:
        return "THP-off";
      case MemCondition::NoContiguity:
        return "No->4KiB-contig";
    }
    return "?";
}

std::optional<MemCondition>
conditionFromName(std::string_view name)
{
    std::string lower(name);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "normal")
        return MemCondition::Normal;
    if (lower == "fragmented")
        return MemCondition::Fragmented;
    if (lower == "thp-off")
        return MemCondition::ThpOff;
    if (lower == "no-contig")
        return MemCondition::NoContiguity;
    return std::nullopt;
}

bool
isTraceApp(const std::string &app)
{
    return app.rfind("trace:", 0) == 0;
}

std::string
traceAppPath(const std::string &app)
{
    SIPT_ASSERT(isTraceApp(app), "not a trace app: ", app);
    return app.substr(6);
}

void
recordTrace(const std::string &app, const SystemConfig &config,
            const std::string &path)
{
    if (isTraceApp(app))
        fatal("recordTrace: cannot re-record a trace app (", app,
              ")");

    // Same pre-conditioning and seed derivation as
    // runSingleCore(): the recorded stream and layout are exactly
    // what the live run would have seen.
    os::BuddyAllocator buddy(config.physMemBytes / pageSize);
    Rng sys_rng(config.seed);
    os::SystemAger ager(buddy);
    os::MemoryFragmenter fragmenter(buddy);
    ager.age(agingChurnOps, agingResidentFraction, sys_rng);
    if (config.condition == MemCondition::Fragmented)
        fragmenter.fragmentTo(0.95, 9, sys_rng, 0.30);

    const std::uint64_t seed = config.seed + 10;
    std::unique_ptr<os::AddressSpace> as;
    std::unique_ptr<cpu::TraceSource> source;
    if (workload::isSynonymApp(app)) {
        as = std::make_unique<os::AddressSpace>(
            buddy, policyFor(config, 0.0), seed + 1);
        source = std::make_unique<workload::SynonymWorkload>(
            workload::synonymSpec(app), *as, seed + 2);
    } else {
        workload::AppProfile profile = workload::appProfile(app);
        profile.footprintBytes = static_cast<std::uint64_t>(
            static_cast<double>(profile.footprintBytes) *
            config.footprintScale);
        as = std::make_unique<os::AddressSpace>(
            buddy, policyFor(config, profile.thpAffinity),
            seed + 1);
        source = std::make_unique<workload::SyntheticWorkload>(
            profile, *as, seed + 2);
    }

    // Allocation phase done: snapshot the layout (for synonym
    // apps that layout is many-to-one), then tee the stream a
    // core would consume into the file.
    workload::TraceRecorder recorder(path, app, config.seed, *as);
    cpu::TeeSource tee(*source, recorder);
    const std::uint64_t total =
        config.warmupRefs + config.measureRefs;
    MemRef ref;
    for (std::uint64_t i = 0; i < total; ++i) {
        if (!tee.next(ref))
            break;
    }
    recorder.finish();
}

std::uint64_t
defaultMeasureRefs()
{
    // Strict parse: "2000x" or a negative must not silently run a
    // different experiment than the user asked for.
    return envU64("SIPT_REFS", 400'000, 1,
                  std::uint64_t{1} << 40);
}

std::uint64_t
defaultWarmupRefs()
{
    return envU64("SIPT_WARMUP", 150'000, 1,
                  std::uint64_t{1} << 40);
}

std::size_t
hashValue(const SystemConfig &config)
{
    std::size_t h = 0;
    hashCombine(h, config.outOfOrder);
    hashCombine(h, static_cast<std::uint8_t>(config.l1Config));
    hashCombine(h, config.l1SizeBytes);
    hashCombine(h, config.l1Assoc);
    hashCombine(h, config.l1HitLatency);
    hashCombine(h, static_cast<std::uint8_t>(config.policy));
    hashCombine(h, config.xlatPredEntries);
    hashCombine(h, config.wayPrediction);
    hashCombine(h, config.radixWalker);
    hashCombine(h, static_cast<std::uint8_t>(config.condition));
    hashCombine(h, config.physMemBytes);
    hashCombine(h, config.warmupRefs);
    hashCombine(h, config.measureRefs);
    hashCombine(h, config.seed);
    hashCombine(h, config.footprintScale);
    hashCombine(h, config.check);
    return h;
}

RunResult
runSingleCore(const std::string &app, const SystemConfig &config)
{
    os::BuddyAllocator buddy(config.physMemBytes / pageSize);
    Rng sys_rng(config.seed);

    // Condition physical memory before the application starts.
    os::SystemAger ager(buddy);
    os::MemoryFragmenter fragmenter(buddy);
    ager.age(agingChurnOps, agingResidentFraction, sys_rng);
    if (config.condition == MemCondition::Fragmented)
        fragmenter.fragmentTo(0.95, 9, sys_rng, 0.30);

    dram::Dram dram;
    cache::TimingCache llc(llcPreset(config.outOfOrder, 1));

    CoreInstance inst = buildCore(config, app, buddy, llc, dram,
                                  config.seed + 10);

    inst.run(config.warmupRefs);
    resetCoreStats(inst);
    llc.resetStats();
    dram.resetStats();

    inst.measured = inst.run(config.measureRefs);

    const double seconds = inst.measured.seconds(3.0);
    return collect(app, config, inst, llc.dynamicEnergyNj(),
                   llc.params().staticPowerMw, seconds);
}

MulticoreResult
runMulticore(const std::vector<std::string> &mix,
             const SystemConfig &config)
{
    if (mix.empty())
        fatal("runMulticore: empty mix");
    const auto cores = static_cast<std::uint32_t>(mix.size());

    os::BuddyAllocator buddy(config.physMemBytes / pageSize);
    Rng sys_rng(config.seed);
    os::SystemAger ager(buddy);
    os::MemoryFragmenter fragmenter(buddy);
    ager.age(agingChurnOps, agingResidentFraction, sys_rng);
    if (config.condition == MemCondition::Fragmented)
        fragmenter.fragmentTo(0.95, 9, sys_rng, 0.30);

    dram::Dram dram;
    cache::TimingCache llc(llcPreset(config.outOfOrder, cores));

    // Shared-mode synonym apps naming the same profile attach the
    // same physical segment from every core — cross-core synonyms
    // over the shared LLC, not per-core private copies. Declared
    // before the cores so the frames outlive every address space
    // mapping them.
    std::map<std::string, std::unique_ptr<os::SharedSegment>>
        segments;
    for (const std::string &app : mix) {
        if (!workload::isSynonymApp(app))
            continue;
        const workload::SynonymSpec spec =
            workload::synonymSpec(app);
        if (spec.mode != workload::SynonymSpec::Mode::Shared)
            continue;
        const std::string key = workload::synonymAppName(spec);
        if (segments.count(key) == 0) {
            segments.emplace(
                key,
                std::make_unique<os::SharedSegment>(
                    buddy, workload::synonymMappingBytes(spec),
                    spec.hugePages));
        }
    }

    std::vector<CoreInstance> insts;
    insts.reserve(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        const os::SharedSegment *shared = nullptr;
        if (workload::isSynonymApp(mix[c])) {
            const auto it = segments.find(workload::synonymAppName(
                workload::synonymSpec(mix[c])));
            if (it != segments.end())
                shared = it->second.get();
        }
        insts.push_back(buildCore(config, mix[c], buddy, llc,
                                  dram,
                                  config.seed + 100 * (c + 1),
                                  shared));
    }

    // Interleave cores in slices so LLC/DRAM contention mixes.
    constexpr std::uint64_t slice = 5'000;
    auto run_phase = [&](std::uint64_t refs_per_core) {
        std::vector<std::uint64_t> done(cores, 0);
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::uint32_t c = 0; c < cores; ++c) {
                if (done[c] >= refs_per_core)
                    continue;
                const std::uint64_t n = std::min(
                    slice, refs_per_core - done[c]);
                const auto res = insts[c].run(n);
                insts[c].measured.cycles += res.cycles;
                insts[c].measured.instructions +=
                    res.instructions;
                insts[c].measured.memRefs += res.memRefs;
                done[c] += n;
                progress = true;
            }
        }
    };

    run_phase(config.warmupRefs);
    for (auto &inst : insts) {
        resetCoreStats(inst);
        inst.measured = cpu::CoreResult{};
    }
    llc.resetStats();
    dram.resetStats();
    run_phase(config.measureRefs);

    MulticoreResult result;
    double max_seconds = 0.0;
    for (const auto &inst : insts) {
        max_seconds =
            std::max(max_seconds, inst.measured.seconds(3.0));
    }
    // LLC dynamic energy is shared; attribute it wholly to the
    // run (core share = 0 except the first, which carries it).
    for (std::uint32_t c = 0; c < cores; ++c) {
        const double llc_dyn =
            c == 0 ? llc.dynamicEnergyNj() : 0.0;
        const double llc_static =
            c == 0 ? llc.params().staticPowerMw : 0.0;
        RunResult r = collect(mix[c], config, insts[c], llc_dyn,
                              llc_static, max_seconds);
        result.sumIpc += r.ipc;
        result.energy += r.energy;
        result.perCore.push_back(std::move(r));
    }
    return result;
}

} // namespace sipt::sim
