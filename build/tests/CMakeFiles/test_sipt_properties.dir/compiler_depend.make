# Empty compiler generated dependencies file for test_sipt_properties.
# This may be replaced when dependencies are built.
