file(REMOVE_RECURSE
  "CMakeFiles/test_sipt_properties.dir/test_sipt_properties.cpp.o"
  "CMakeFiles/test_sipt_properties.dir/test_sipt_properties.cpp.o.d"
  "test_sipt_properties"
  "test_sipt_properties.pdb"
  "test_sipt_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sipt_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
