# Empty compiler generated dependencies file for test_synonyms.
# This may be replaced when dependencies are built.
