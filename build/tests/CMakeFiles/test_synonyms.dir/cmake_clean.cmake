file(REMOVE_RECURSE
  "CMakeFiles/test_synonyms.dir/test_synonyms.cpp.o"
  "CMakeFiles/test_synonyms.dir/test_synonyms.cpp.o.d"
  "test_synonyms"
  "test_synonyms.pdb"
  "test_synonyms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synonyms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
