
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_replay.cpp" "tests/CMakeFiles/test_replay.dir/test_replay.cpp.o" "gcc" "tests/CMakeFiles/test_replay.dir/test_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sipt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sipt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/sipt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sipt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sipt_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sipt/CMakeFiles/sipt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sipt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sipt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/sipt_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/sipt_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sipt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
