file(REMOVE_RECURSE
  "CMakeFiles/test_buddy_allocator.dir/test_buddy_allocator.cpp.o"
  "CMakeFiles/test_buddy_allocator.dir/test_buddy_allocator.cpp.o.d"
  "test_buddy_allocator"
  "test_buddy_allocator.pdb"
  "test_buddy_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buddy_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
