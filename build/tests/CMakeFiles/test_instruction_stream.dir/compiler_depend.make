# Empty compiler generated dependencies file for test_instruction_stream.
# This may be replaced when dependencies are built.
