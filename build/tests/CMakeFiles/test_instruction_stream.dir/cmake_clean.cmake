file(REMOVE_RECURSE
  "CMakeFiles/test_instruction_stream.dir/test_instruction_stream.cpp.o"
  "CMakeFiles/test_instruction_stream.dir/test_instruction_stream.cpp.o.d"
  "test_instruction_stream"
  "test_instruction_stream.pdb"
  "test_instruction_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instruction_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
