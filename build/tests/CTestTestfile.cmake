# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitops[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_buddy_allocator[1]_include.cmake")
include("/root/repo/build/tests/test_address_space[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_page_walker[1]_include.cmake")
include("/root/repo/build/tests/test_cache_array[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_l1_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sipt_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure_modes[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_synonyms[1]_include.cmake")
include("/root/repo/build/tests/test_instruction_stream[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_multiprocess[1]_include.cmake")
