file(REMOVE_RECURSE
  "CMakeFiles/sipt_os.dir/address_space.cc.o"
  "CMakeFiles/sipt_os.dir/address_space.cc.o.d"
  "CMakeFiles/sipt_os.dir/buddy_allocator.cc.o"
  "CMakeFiles/sipt_os.dir/buddy_allocator.cc.o.d"
  "CMakeFiles/sipt_os.dir/fragmenter.cc.o"
  "CMakeFiles/sipt_os.dir/fragmenter.cc.o.d"
  "libsipt_os.a"
  "libsipt_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
