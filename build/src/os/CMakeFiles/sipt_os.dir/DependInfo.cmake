
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/address_space.cc" "src/os/CMakeFiles/sipt_os.dir/address_space.cc.o" "gcc" "src/os/CMakeFiles/sipt_os.dir/address_space.cc.o.d"
  "/root/repo/src/os/buddy_allocator.cc" "src/os/CMakeFiles/sipt_os.dir/buddy_allocator.cc.o" "gcc" "src/os/CMakeFiles/sipt_os.dir/buddy_allocator.cc.o.d"
  "/root/repo/src/os/fragmenter.cc" "src/os/CMakeFiles/sipt_os.dir/fragmenter.cc.o" "gcc" "src/os/CMakeFiles/sipt_os.dir/fragmenter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sipt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sipt_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
