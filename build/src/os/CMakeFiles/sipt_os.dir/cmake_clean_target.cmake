file(REMOVE_RECURSE
  "libsipt_os.a"
)
