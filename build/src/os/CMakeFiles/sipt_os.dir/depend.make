# Empty dependencies file for sipt_os.
# This may be replaced when dependencies are built.
