# Empty dependencies file for sipt_workload.
# This may be replaced when dependencies are built.
