file(REMOVE_RECURSE
  "CMakeFiles/sipt_workload.dir/instruction_stream.cc.o"
  "CMakeFiles/sipt_workload.dir/instruction_stream.cc.o.d"
  "CMakeFiles/sipt_workload.dir/profile.cc.o"
  "CMakeFiles/sipt_workload.dir/profile.cc.o.d"
  "CMakeFiles/sipt_workload.dir/synthetic.cc.o"
  "CMakeFiles/sipt_workload.dir/synthetic.cc.o.d"
  "libsipt_workload.a"
  "libsipt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
