
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/instruction_stream.cc" "src/workload/CMakeFiles/sipt_workload.dir/instruction_stream.cc.o" "gcc" "src/workload/CMakeFiles/sipt_workload.dir/instruction_stream.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/sipt_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/sipt_workload.dir/profile.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/sipt_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/sipt_workload.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sipt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/sipt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sipt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sipt_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
