file(REMOVE_RECURSE
  "libsipt_workload.a"
)
