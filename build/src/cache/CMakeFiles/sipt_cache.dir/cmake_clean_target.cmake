file(REMOVE_RECURSE
  "libsipt_cache.a"
)
