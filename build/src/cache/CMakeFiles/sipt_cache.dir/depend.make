# Empty dependencies file for sipt_cache.
# This may be replaced when dependencies are built.
