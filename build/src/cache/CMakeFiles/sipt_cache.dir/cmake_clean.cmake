file(REMOVE_RECURSE
  "CMakeFiles/sipt_cache.dir/cache_array.cc.o"
  "CMakeFiles/sipt_cache.dir/cache_array.cc.o.d"
  "CMakeFiles/sipt_cache.dir/hierarchy.cc.o"
  "CMakeFiles/sipt_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/sipt_cache.dir/timing_cache.cc.o"
  "CMakeFiles/sipt_cache.dir/timing_cache.cc.o.d"
  "libsipt_cache.a"
  "libsipt_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
