# Empty compiler generated dependencies file for sipt_cache.
# This may be replaced when dependencies are built.
