file(REMOVE_RECURSE
  "libsipt_cpu.a"
)
