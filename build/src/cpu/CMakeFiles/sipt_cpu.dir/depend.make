# Empty dependencies file for sipt_cpu.
# This may be replaced when dependencies are built.
