file(REMOVE_RECURSE
  "CMakeFiles/sipt_cpu.dir/core.cc.o"
  "CMakeFiles/sipt_cpu.dir/core.cc.o.d"
  "libsipt_cpu.a"
  "libsipt_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
