file(REMOVE_RECURSE
  "CMakeFiles/sipt_predictor.dir/combined.cc.o"
  "CMakeFiles/sipt_predictor.dir/combined.cc.o.d"
  "CMakeFiles/sipt_predictor.dir/counter.cc.o"
  "CMakeFiles/sipt_predictor.dir/counter.cc.o.d"
  "CMakeFiles/sipt_predictor.dir/idb.cc.o"
  "CMakeFiles/sipt_predictor.dir/idb.cc.o.d"
  "CMakeFiles/sipt_predictor.dir/perceptron.cc.o"
  "CMakeFiles/sipt_predictor.dir/perceptron.cc.o.d"
  "libsipt_predictor.a"
  "libsipt_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
