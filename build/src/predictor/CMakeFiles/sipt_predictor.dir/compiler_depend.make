# Empty compiler generated dependencies file for sipt_predictor.
# This may be replaced when dependencies are built.
