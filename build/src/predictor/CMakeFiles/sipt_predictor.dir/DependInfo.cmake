
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/combined.cc" "src/predictor/CMakeFiles/sipt_predictor.dir/combined.cc.o" "gcc" "src/predictor/CMakeFiles/sipt_predictor.dir/combined.cc.o.d"
  "/root/repo/src/predictor/counter.cc" "src/predictor/CMakeFiles/sipt_predictor.dir/counter.cc.o" "gcc" "src/predictor/CMakeFiles/sipt_predictor.dir/counter.cc.o.d"
  "/root/repo/src/predictor/idb.cc" "src/predictor/CMakeFiles/sipt_predictor.dir/idb.cc.o" "gcc" "src/predictor/CMakeFiles/sipt_predictor.dir/idb.cc.o.d"
  "/root/repo/src/predictor/perceptron.cc" "src/predictor/CMakeFiles/sipt_predictor.dir/perceptron.cc.o" "gcc" "src/predictor/CMakeFiles/sipt_predictor.dir/perceptron.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sipt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
