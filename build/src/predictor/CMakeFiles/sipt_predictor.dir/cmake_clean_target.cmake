file(REMOVE_RECURSE
  "libsipt_predictor.a"
)
