file(REMOVE_RECURSE
  "libsipt_common.a"
)
