file(REMOVE_RECURSE
  "CMakeFiles/sipt_common.dir/logging.cc.o"
  "CMakeFiles/sipt_common.dir/logging.cc.o.d"
  "CMakeFiles/sipt_common.dir/stats.cc.o"
  "CMakeFiles/sipt_common.dir/stats.cc.o.d"
  "CMakeFiles/sipt_common.dir/table.cc.o"
  "CMakeFiles/sipt_common.dir/table.cc.o.d"
  "libsipt_common.a"
  "libsipt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
