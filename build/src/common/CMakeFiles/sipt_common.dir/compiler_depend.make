# Empty compiler generated dependencies file for sipt_common.
# This may be replaced when dependencies are built.
