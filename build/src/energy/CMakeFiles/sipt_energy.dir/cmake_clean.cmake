file(REMOVE_RECURSE
  "CMakeFiles/sipt_energy.dir/accounting.cc.o"
  "CMakeFiles/sipt_energy.dir/accounting.cc.o.d"
  "CMakeFiles/sipt_energy.dir/cacti_model.cc.o"
  "CMakeFiles/sipt_energy.dir/cacti_model.cc.o.d"
  "libsipt_energy.a"
  "libsipt_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
