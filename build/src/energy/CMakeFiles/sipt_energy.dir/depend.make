# Empty dependencies file for sipt_energy.
# This may be replaced when dependencies are built.
