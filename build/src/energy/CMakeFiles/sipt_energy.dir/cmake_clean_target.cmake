file(REMOVE_RECURSE
  "libsipt_energy.a"
)
