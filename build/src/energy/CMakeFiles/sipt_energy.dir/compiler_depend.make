# Empty compiler generated dependencies file for sipt_energy.
# This may be replaced when dependencies are built.
