
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sipt/l1_cache.cc" "src/sipt/CMakeFiles/sipt_core.dir/l1_cache.cc.o" "gcc" "src/sipt/CMakeFiles/sipt_core.dir/l1_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sipt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sipt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/sipt_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sipt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/sipt_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
