# Empty compiler generated dependencies file for sipt_core.
# This may be replaced when dependencies are built.
