file(REMOVE_RECURSE
  "libsipt_core.a"
)
