file(REMOVE_RECURSE
  "CMakeFiles/sipt_core.dir/l1_cache.cc.o"
  "CMakeFiles/sipt_core.dir/l1_cache.cc.o.d"
  "libsipt_core.a"
  "libsipt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
