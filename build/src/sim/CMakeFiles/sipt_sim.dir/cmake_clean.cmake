file(REMOVE_RECURSE
  "CMakeFiles/sipt_sim.dir/presets.cc.o"
  "CMakeFiles/sipt_sim.dir/presets.cc.o.d"
  "CMakeFiles/sipt_sim.dir/report.cc.o"
  "CMakeFiles/sipt_sim.dir/report.cc.o.d"
  "CMakeFiles/sipt_sim.dir/system.cc.o"
  "CMakeFiles/sipt_sim.dir/system.cc.o.d"
  "libsipt_sim.a"
  "libsipt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
