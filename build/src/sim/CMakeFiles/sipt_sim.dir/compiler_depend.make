# Empty compiler generated dependencies file for sipt_sim.
# This may be replaced when dependencies are built.
