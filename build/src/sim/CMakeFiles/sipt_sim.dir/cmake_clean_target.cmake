file(REMOVE_RECURSE
  "libsipt_sim.a"
)
