# Empty compiler generated dependencies file for sipt_vm.
# This may be replaced when dependencies are built.
