file(REMOVE_RECURSE
  "libsipt_vm.a"
)
