file(REMOVE_RECURSE
  "CMakeFiles/sipt_vm.dir/mmu.cc.o"
  "CMakeFiles/sipt_vm.dir/mmu.cc.o.d"
  "CMakeFiles/sipt_vm.dir/page_table.cc.o"
  "CMakeFiles/sipt_vm.dir/page_table.cc.o.d"
  "CMakeFiles/sipt_vm.dir/page_walker.cc.o"
  "CMakeFiles/sipt_vm.dir/page_walker.cc.o.d"
  "CMakeFiles/sipt_vm.dir/tlb.cc.o"
  "CMakeFiles/sipt_vm.dir/tlb.cc.o.d"
  "libsipt_vm.a"
  "libsipt_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
