file(REMOVE_RECURSE
  "libsipt_dram.a"
)
