# Empty dependencies file for sipt_dram.
# This may be replaced when dependencies are built.
