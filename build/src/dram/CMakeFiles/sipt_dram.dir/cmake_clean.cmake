file(REMOVE_RECURSE
  "CMakeFiles/sipt_dram.dir/dram.cc.o"
  "CMakeFiles/sipt_dram.dir/dram.cc.o.d"
  "libsipt_dram.a"
  "libsipt_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
