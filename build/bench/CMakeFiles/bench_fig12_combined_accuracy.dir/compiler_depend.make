# Empty compiler generated dependencies file for bench_fig12_combined_accuracy.
# This may be replaced when dependencies are built.
