# Empty compiler generated dependencies file for bench_fig13_sipt_idb_ipc.
# This may be replaced when dependencies are built.
