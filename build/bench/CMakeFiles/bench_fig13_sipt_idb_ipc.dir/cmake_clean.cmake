file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sipt_idb_ipc.dir/bench_fig13_sipt_idb_ipc.cpp.o"
  "CMakeFiles/bench_fig13_sipt_idb_ipc.dir/bench_fig13_sipt_idb_ipc.cpp.o.d"
  "bench_fig13_sipt_idb_ipc"
  "bench_fig13_sipt_idb_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sipt_idb_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
