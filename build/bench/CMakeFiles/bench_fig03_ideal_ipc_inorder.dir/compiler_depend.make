# Empty compiler generated dependencies file for bench_fig03_ideal_ipc_inorder.
# This may be replaced when dependencies are built.
