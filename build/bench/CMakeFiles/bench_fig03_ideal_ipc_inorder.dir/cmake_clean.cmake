file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_ideal_ipc_inorder.dir/bench_fig03_ideal_ipc_inorder.cpp.o"
  "CMakeFiles/bench_fig03_ideal_ipc_inorder.dir/bench_fig03_ideal_ipc_inorder.cpp.o.d"
  "bench_fig03_ideal_ipc_inorder"
  "bench_fig03_ideal_ipc_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_ideal_ipc_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
