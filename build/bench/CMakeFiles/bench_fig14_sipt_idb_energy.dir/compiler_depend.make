# Empty compiler generated dependencies file for bench_fig14_sipt_idb_energy.
# This may be replaced when dependencies are built.
