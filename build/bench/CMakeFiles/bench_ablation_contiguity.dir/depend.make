# Empty dependencies file for bench_ablation_contiguity.
# This may be replaced when dependencies are built.
