file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_contiguity.dir/bench_ablation_contiguity.cpp.o"
  "CMakeFiles/bench_ablation_contiguity.dir/bench_ablation_contiguity.cpp.o.d"
  "bench_ablation_contiguity"
  "bench_ablation_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
