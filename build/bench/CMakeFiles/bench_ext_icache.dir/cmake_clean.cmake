file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_icache.dir/bench_ext_icache.cpp.o"
  "CMakeFiles/bench_ext_icache.dir/bench_ext_icache.cpp.o.d"
  "bench_ext_icache"
  "bench_ext_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
