file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_waypred_energy.dir/bench_fig17_waypred_energy.cpp.o"
  "CMakeFiles/bench_fig17_waypred_energy.dir/bench_fig17_waypred_energy.cpp.o.d"
  "bench_fig17_waypred_energy"
  "bench_fig17_waypred_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_waypred_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
