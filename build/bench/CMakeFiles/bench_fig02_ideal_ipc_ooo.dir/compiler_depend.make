# Empty compiler generated dependencies file for bench_fig02_ideal_ipc_ooo.
# This may be replaced when dependencies are built.
