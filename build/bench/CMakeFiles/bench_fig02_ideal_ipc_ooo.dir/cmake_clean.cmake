file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_ideal_ipc_ooo.dir/bench_fig02_ideal_ipc_ooo.cpp.o"
  "CMakeFiles/bench_fig02_ideal_ipc_ooo.dir/bench_fig02_ideal_ipc_ooo.cpp.o.d"
  "bench_fig02_ideal_ipc_ooo"
  "bench_fig02_ideal_ipc_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_ideal_ipc_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
