# Empty compiler generated dependencies file for bench_fig06_naive_ipc.
# This may be replaced when dependencies are built.
