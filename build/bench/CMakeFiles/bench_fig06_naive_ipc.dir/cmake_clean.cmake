file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_naive_ipc.dir/bench_fig06_naive_ipc.cpp.o"
  "CMakeFiles/bench_fig06_naive_ipc.dir/bench_fig06_naive_ipc.cpp.o.d"
  "bench_fig06_naive_ipc"
  "bench_fig06_naive_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_naive_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
