file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_speculation.dir/bench_fig05_speculation.cpp.o"
  "CMakeFiles/bench_fig05_speculation.dir/bench_fig05_speculation.cpp.o.d"
  "bench_fig05_speculation"
  "bench_fig05_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
