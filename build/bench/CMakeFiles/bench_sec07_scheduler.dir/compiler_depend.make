# Empty compiler generated dependencies file for bench_sec07_scheduler.
# This may be replaced when dependencies are built.
