# Empty dependencies file for bench_fig07_naive_energy.
# This may be replaced when dependencies are built.
