# Empty compiler generated dependencies file for bench_fig16_waypred_ipc.
# This may be replaced when dependencies are built.
