file(REMOVE_RECURSE
  "CMakeFiles/sipt_explorer.dir/sipt_explorer.cpp.o"
  "CMakeFiles/sipt_explorer.dir/sipt_explorer.cpp.o.d"
  "sipt_explorer"
  "sipt_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sipt_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
