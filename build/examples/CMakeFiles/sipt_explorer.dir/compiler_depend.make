# Empty compiler generated dependencies file for sipt_explorer.
# This may be replaced when dependencies are built.
