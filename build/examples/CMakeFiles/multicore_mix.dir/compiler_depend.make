# Empty compiler generated dependencies file for multicore_mix.
# This may be replaced when dependencies are built.
