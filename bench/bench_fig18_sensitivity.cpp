/**
 * @file
 * Fig. 18: sensitivity of SIPT+IDB to the physical-memory
 * operating condition — normal (aged machine), artificially
 * fragmented memory (Fu(9) > 0.95), transparent huge pages off,
 * and zero >4KiB contiguity — on both the OOO and in-order
 * cores, for all four SIPT configurations. Reports average IPC
 * and cache energy normalised to the baseline L1 under the same
 * condition, plus prediction accuracy (fast-access fraction).
 *
 * By default a documented subset of applications spanning the
 * three behaviour classes is used (SIPT_ALL_APPS=1 for all 26).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;
    using sim::MemCondition;

    bench::figureHeader(
        "Fig. 18: sensitivity to memory condition "
        "(averages over app subset)");

    const auto app_list = bench::sensitivityApps();
    const std::vector<MemCondition> conds = {
        MemCondition::Normal, MemCondition::Fragmented,
        MemCondition::ThpOff, MemCondition::NoContiguity};
    const auto &cfgs = sim::siptConfigs();

    TextTable t({"core", "condition", "config", "IPC",
                 "energy", "pred.acc"});

    // Submit the full (core, condition, config, app) sweep up
    // front; each (core, condition) baseline set is simulated
    // once and reused by all four SIPT configs.
    std::vector<bench::RunFuture> base_f, cfg_f;
    for (bool ooo : {true, false}) {
        for (const auto cond : conds) {
            for (const auto &app : app_list) {
                sim::SystemConfig base;
                base.outOfOrder = ooo;
                base.condition = cond;
                base.measureRefs = bench::measureRefs() / 2;
                base_f.push_back(
                    bench::sweep().enqueue(app, base));
            }
            for (const auto cfg_id : cfgs) {
                for (const auto &app : app_list) {
                    sim::SystemConfig cfg;
                    cfg.outOfOrder = ooo;
                    cfg.condition = cond;
                    cfg.l1Config = cfg_id;
                    cfg.policy = IndexingPolicy::SiptCombined;
                    cfg.measureRefs = bench::measureRefs() / 2;
                    cfg_f.push_back(
                        bench::sweep().enqueue(app, cfg));
                }
            }
        }
    }

    std::size_t base_i = 0, cfg_i = 0;
    for (bool ooo : {true, false}) {
        for (const auto cond : conds) {
            std::vector<double> base_ipc, base_energy;
            for (std::size_t a = 0; a < app_list.size(); ++a) {
                const auto r = base_f[base_i++].get();
                base_ipc.push_back(r.ipc);
                base_energy.push_back(r.energy.total());
            }
            for (const auto cfg_id : cfgs) {
                std::vector<double> speedups, energies, accs;
                for (std::size_t a = 0; a < app_list.size();
                     ++a) {
                    const auto r = cfg_f[cfg_i++].get();
                    speedups.push_back(r.ipc / base_ipc[a]);
                    energies.push_back(r.energy.total() /
                                       base_energy[a]);
                    accs.push_back(r.fastFraction);
                }
                t.beginRow();
                t.add(ooo ? "OOO" : "in-order");
                t.add(sim::conditionName(cond));
                t.add(sim::l1ConfigName(cfg_id));
                t.add(harmonicMean(speedups), 3);
                t.add(arithmeticMean(energies), 3);
                t.add(arithmeticMean(accs), 3);
            }
        }
    }
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape (32KiB 2-way, OOO): prediction "
                 "accuracy 86.7% -> 84% fragmented -> 83.1% "
                 "THP-off -> 73% no-contiguity; IPC gain 5.9% "
                 "-> 5.3% -> 4.8% -> 3.8%. Degradation is real "
                 "but mild.\n";
    return 0;
}
