/**
 * @file
 * Ablations the paper reports in passing (Secs. V-VI):
 *  - counter-based bypass predictors are ~85% accurate and
 *    inconsistent, vs >90% for the perceptron;
 *  - the perceptron is insensitive to table size / history
 *    length at this problem size;
 *  - the IDB is what recovers the bypass-hostile applications
 *    (bypass-only vs combined fast fraction).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/bitops.hh"
#include "common/table.hh"
#include "predictor/combined.hh"
#include "predictor/counter.hh"
#include "predictor/perceptron.hh"

namespace
{

using namespace sipt;

constexpr unsigned specBits = 2;

struct Acc
{
    std::uint64_t correct = 0;
    std::uint64_t total = 0;

    double
    rate() const
    {
        return total ? static_cast<double>(correct) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

} // namespace

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Ablation: predictor designs (2 speculative bits)");

    const std::uint64_t refs = bench::measureRefs() / 2;
    TextTable t({"app", "counter2b", "perceptron",
                 "perc 256e/24h", "bypass-only fast",
                 "combined fast"});
    std::vector<double> c_v, p_v, pl_v, bf_v, cf_v;

    // One predictor-comparison task per app on the engine pool.
    struct Row
    {
        double counter, small, large, bypassFast, combinedFast;
    };
    const auto app_list = bench::sensitivityApps();
    std::vector<std::shared_future<Row>> rows;
    for (const auto &app : app_list) {
        rows.push_back(bench::sweep().async([app, refs] {
            bench::TraceLab lab(app);
            predictor::CounterBypassPredictor counter;
            predictor::PerceptronBypassPredictor small_perc;
            predictor::PerceptronBypassPredictor large_perc(
                predictor::PerceptronParams{256, 24, 6, -1});
            predictor::CombinedIndexPredictor combined(specBits);

            Acc a_counter, a_small, a_large;
            std::uint64_t bypass_fast = 0, combined_fast = 0;

            MemRef ref;
            for (std::uint64_t i = 0; i < refs; ++i) {
                lab.workload.next(ref);
                const Vpn vpn = ref.vaddr >> pageShift;
                const Pfn pfn = lab.pfnOf(ref.vaddr);
                const bool unchanged =
                    (vpn & mask(specBits)) ==
                    (pfn & mask(specBits));

                const bool c = counter.predictSpeculate(ref.pc);
                const bool s =
                    small_perc.predictSpeculate(ref.pc);
                const bool l =
                    large_perc.predictSpeculate(ref.pc);
                a_counter.correct += (c == unchanged);
                a_small.correct += (s == unchanged);
                a_large.correct += (l == unchanged);
                ++a_counter.total;
                ++a_small.total;
                ++a_large.total;
                // Bypass-only is fast only on correct
                // speculation.
                bypass_fast += (s && unchanged);

                const auto pred = combined.predict(ref.pc, vpn);
                combined_fast += (pred.bits ==
                                  (pfn & mask(specBits)));

                counter.train(ref.pc, unchanged);
                small_perc.train(ref.pc, unchanged);
                large_perc.train(ref.pc, unchanged);
                combined.update(ref.pc, vpn, pfn);
            }
            const auto frac = [&](std::uint64_t n) {
                return static_cast<double>(n) /
                       static_cast<double>(refs);
            };
            return Row{a_counter.rate(), a_small.rate(),
                       a_large.rate(), frac(bypass_fast),
                       frac(combined_fast)};
        }));
    }

    for (std::size_t a = 0; a < app_list.size(); ++a) {
        const Row row = rows[a].get();
        t.beginRow();
        t.add(app_list[a]);
        t.add(row.counter, 3);
        t.add(row.small, 3);
        t.add(row.large, 3);
        t.add(row.bypassFast, 3);
        t.add(row.combinedFast, 3);
        c_v.push_back(row.counter);
        p_v.push_back(row.small);
        pl_v.push_back(row.large);
        bf_v.push_back(row.bypassFast);
        cf_v.push_back(row.combinedFast);
    }
    t.beginRow();
    t.add("Mean");
    t.add(arithmeticMean(c_v), 3);
    t.add(arithmeticMean(p_v), 3);
    t.add(arithmeticMean(pl_v), 3);
    t.add(arithmeticMean(bf_v), 3);
    t.add(arithmeticMean(cf_v), 3);
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: counters ~85% and inconsistent; "
                 "perceptron >90% and insensitive to size; the "
                 "IDB converts bypassed accesses to fast ones.\n";
    return 0;
}
