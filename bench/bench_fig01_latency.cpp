/**
 * @file
 * Fig. 1 + Tab. I: L1 access latency (range and mean over
 * ports/banks sweeps) for each capacity/associativity point,
 * normalised to the 32 KiB 8-way baseline.
 *
 * Feasible-under-VIPT configurations (way size <= 4 KiB) are
 * marked; the paper's point is that the attractive low-latency
 * points are all infeasible.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "energy/cacti_model.hh"

int
main()
{
    using namespace sipt;
    using energy::ArrayConfig;
    using energy::CactiModel;

    bench::figureHeader(
        "Fig. 1: L1 latency vs capacity/associativity "
        "(normalised to 32KiB 8-way)");

    // Baseline mean over the same ports/banks sweep.
    const std::vector<std::uint32_t> ports = {1, 2};
    const std::vector<std::uint32_t> banks = {1, 2, 4};

    auto sweep = [ports, banks](std::uint64_t size,
                                std::uint32_t assoc, double &mn,
                                double &mx, double &mean) {
        std::vector<double> lats;
        for (auto p : ports) {
            for (auto b : banks) {
                lats.push_back(CactiModel::latencyRaw(
                    ArrayConfig{size, assoc, p, b}));
            }
        }
        mn = *std::min_element(lats.begin(), lats.end());
        mx = *std::max_element(lats.begin(), lats.end());
        mean = arithmeticMean(lats);
    };

    double base_min = 0, base_max = 0, base_mean = 0;
    sweep(32 * 1024, 8, base_min, base_max, base_mean);

    TextTable t({"capacity", "assoc", "lat min", "lat mean",
                 "lat max", "cycles", "VIPT-feasible"});
    const std::vector<std::uint64_t> sizes = {
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024};
    const std::vector<std::uint32_t> assocs = {2, 4, 8, 16, 32};

    // CACTI rows are cheap but independent; run them through the
    // engine anyway so every figure exercises the same path.
    struct Row
    {
        double mn, mean, mx;
        Cycles cycles;
    };
    std::vector<std::shared_future<Row>> rows;
    for (auto size : sizes) {
        for (auto assoc : assocs) {
            if (size / assoc < 64)
                continue;
            rows.push_back(
                bench::sweep().async([sweep, size, assoc] {
                    Row row{};
                    sweep(size, assoc, row.mn, row.mx, row.mean);
                    row.cycles = CactiModel::latencyCycles(
                        ArrayConfig{size, assoc, 1, 1});
                    return row;
                }));
        }
    }

    std::size_t i = 0;
    for (auto size : sizes) {
        for (auto assoc : assocs) {
            if (size / assoc < 64)
                continue;
            const Row row = rows[i++].get();
            t.beginRow();
            t.add(std::to_string(size / 1024) + "KiB");
            t.add(std::uint64_t{assoc});
            t.add(row.mn / base_mean, 3);
            t.add(row.mean / base_mean, 3);
            t.add(row.mx / base_mean, 3);
            t.add(row.cycles);
            t.add(size / assoc <= pageSize ? "yes" : "no");
        }
    }
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: associativity dominates latency "
                 "(sharply beyond 4 ways); the desirable "
                 "low-latency configs are VIPT-infeasible.\n";
    return 0;
}
