/**
 * @file
 * Fig. 5: fraction of accesses whose speculative index bits are
 * unchanged by translation, for 1, 2, and 3 bits, plus the
 * fraction of accesses to transparently mapped huge pages
 * ("hugepage (9-bit)" in the paper).
 *
 * This is a property of the address stream and the OS mapping
 * alone; no cache model is involved.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/bitops.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 5: correct (unchanged-bit) speculation fraction "
        "vs speculative index bits");

    TextTable t({"app", "1-bit", "2-bit", "3-bit",
                 "hugepage(9b)"});
    const std::uint64_t refs = bench::measureRefs();

    // One self-contained trace analysis per app, run on the
    // sweep engine's pool; rows print in submission order.
    struct Row
    {
        std::array<double, 3> unchanged;
        double huge;
    };
    std::vector<std::shared_future<Row>> rows;
    for (const auto &app : bench::apps()) {
        rows.push_back(bench::sweep().async([app, refs] {
            bench::TraceLab lab(app);
            std::uint64_t unchanged[3] = {0, 0, 0};
            std::uint64_t huge_refs = 0;
            MemRef ref;
            for (std::uint64_t i = 0; i < refs; ++i) {
                lab.workload.next(ref);
                const Vpn vpn = ref.vaddr >> pageShift;
                const Pfn pfn = lab.pfnOf(ref.vaddr);
                for (unsigned k = 1; k <= 3; ++k) {
                    if ((vpn & mask(k)) == (pfn & mask(k)))
                        ++unchanged[k - 1];
                }
                if (lab.isHuge(ref.vaddr))
                    ++huge_refs;
            }
            Row row;
            for (unsigned k = 0; k < 3; ++k)
                row.unchanged[k] =
                    static_cast<double>(unchanged[k]) /
                    static_cast<double>(refs);
            row.huge = static_cast<double>(huge_refs) /
                       static_cast<double>(refs);
            return row;
        }));
    }

    std::vector<double> avg(4, 0.0);
    for (std::size_t a = 0; a < bench::apps().size(); ++a) {
        const Row row = rows[a].get();
        t.beginRow();
        t.add(bench::apps()[a]);
        for (unsigned k = 0; k < 3; ++k) {
            t.add(row.unchanged[k], 3);
            avg[k] += row.unchanged[k];
        }
        t.add(row.huge, 3);
        avg[3] += row.huge;
    }
    t.beginRow();
    t.add("Average");
    for (unsigned k = 0; k < 4; ++k)
        t.add(avg[k] / static_cast<double>(bench::apps().size()),
              3);
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: most apps speculate correctly "
                 "with 1 bit; accuracy decays with more bits; a "
                 "handful of apps (deepsjeng_17, cactusADM, "
                 "calculix, graph500, ycsb, xalancbmk_17, "
                 "gromacs) are hostile even at 1 bit; "
                 "libquantum/GemsFDTD are hugepage-dominated.\n";
    return 0;
}
