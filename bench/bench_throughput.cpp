/**
 * @file
 * Simulator-throughput benchmark: measured references per second of
 * the scalar and batched access-pipeline engines across the
 * representative workload shapes (see EXPERIMENTS.md, "Throughput
 * methodology").
 *
 * Unlike the figure benches, this bench measures the *simulator*,
 * not the simulated machine: both engines produce bit-identical
 * results (tests/test_batch.cpp), so the only question is how fast
 * each drives the same simulation. Per config, each rep times a
 * complete scalar run then a complete batch run back to back
 * (interleaved, so host-noise phases hit both engines alike), and
 * each engine is scored by its minimum wall-clock over --reps —
 * on a shared host the minimum is the robust estimator of true
 * cost; means absorb scheduler noise.
 *
 * Modes:
 *   bench_throughput [--refs N] [--reps N]            print table
 *   bench_throughput --out FILE                       + write JSON
 *   bench_throughput --check FILE [--tolerance T]     regression
 *
 * --check re-measures and compares each config's batch/scalar
 * speedup against the committed baseline (BENCH_throughput.json).
 * The speedup ratio is used rather than absolute refs/sec because
 * it transfers across hosts; absolute numbers in the baseline
 * record the machine that produced them. Exits non-zero when a
 * config's speedup falls more than T (default 0.20, i.e. 20%,
 * SIPT_BENCH_TOLERANCE overrides) below the baseline.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "sim/system.hh"

namespace sipt::bench
{
namespace
{

using Clock = std::chrono::steady_clock;

/** One measured workload shape. */
struct ThroughputConfig
{
    std::string name;
    std::string app;
    sim::L1Config l1Config;
    IndexingPolicy policy;
    sim::MemCondition condition = sim::MemCondition::Normal;
    bool multicore = false;
};

/** The representative shapes the trajectory is tracked over. */
std::vector<ThroughputConfig>
configs()
{
    return {
        // The paper's VIPT baseline machine.
        {"vipt-base", "mcf", sim::L1Config::Baseline32K8,
         IndexingPolicy::Vipt},
        // THE single-core synthetic config: the SIPT machine on the
        // pointer-chasing app, the shape the simulator spends most
        // of its life on.
        {"sipt-combined", "mcf", sim::L1Config::Sipt32K2,
         IndexingPolicy::SiptCombined},
        // Translation-stressed variant: THP off makes every page
        // small, so the flat page map and SoA TLB carry the most
        // weight here.
        {"sipt-thp-off", "mcf", sim::L1Config::Sipt32K2,
         IndexingPolicy::SiptCombined, sim::MemCondition::ThpOff},
        // Trace replay: the generator is out of the loop; the
        // pipeline runs off a recorded reference stream.
        {"trace-replay", "milc", sim::L1Config::Sipt32K2,
         IndexingPolicy::SiptCombined},
        // Four-core mix sharing an LLC.
        {"quad-mix", "mix", sim::L1Config::Sipt32K2,
         IndexingPolicy::SiptCombined, sim::MemCondition::Normal,
         true},
    };
}

const std::vector<std::string> &
quadMix()
{
    static const std::vector<std::string> mix = {"mcf", "hmmer",
                                                 "gcc", "astar"};
    return mix;
}

/** Result of one (config, engine) measurement. */
struct Cell
{
    double refsPerSec = 0.0;
    double ipc = 0.0;
};

sim::SystemConfig
systemConfigFor(const ThroughputConfig &tc, std::uint64_t refs)
{
    sim::SystemConfig config;
    config.l1Config = tc.l1Config;
    config.policy = tc.policy;
    config.condition = tc.condition;
    // The whole run is timed, so fold warmup into the measured
    // phase: every simulated reference counts toward refs/sec.
    config.warmupRefs = 0;
    config.measureRefs = refs;
    return config;
}

/** Time one full run; returns wall seconds, IPC via @p out. */
double
timeOnce(const ThroughputConfig &tc, const std::string &app,
         sim::EngineSelect engine, std::uint64_t refs, Cell &out)
{
    sim::SystemConfig config = systemConfigFor(tc, refs);
    config.engine = engine;
    const auto t0 = Clock::now();
    if (tc.multicore) {
        const sim::MulticoreResult r =
            sim::runMulticore(quadMix(), config);
        out.ipc = r.sumIpc;
    } else {
        const sim::RunResult r = sim::runSingleCore(app, config);
        out.ipc = r.ipc;
    }
    return std::chrono::duration<double>(Clock::now() - t0)
        .count();
}

/**
 * Measure both engines for one config, *interleaved*: each rep
 * times scalar then batch back to back, so slow host phases (this
 * is routinely run on shared machines) hit both engines alike
 * instead of landing on whichever engine owned that time window.
 * The min over reps is taken per engine.
 */
void
measurePair(const ThroughputConfig &tc, const std::string &app,
            std::uint64_t refs, int reps, Cell &scalar, Cell &batch)
{
    const std::uint64_t total_refs =
        tc.multicore ? refs * quadMix().size() : refs;
    double best_scalar = 0.0;
    double best_batch = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double s = timeOnce(tc, app,
                                  sim::EngineSelect::Scalar, refs,
                                  scalar);
        const double b = timeOnce(tc, app,
                                  sim::EngineSelect::Batch, refs,
                                  batch);
        if (s > 0.0)
            best_scalar = best_scalar == 0.0
                              ? s
                              : std::min(best_scalar, s);
        if (b > 0.0)
            best_batch =
                best_batch == 0.0 ? b : std::min(best_batch, b);
    }
    scalar.refsPerSec =
        best_scalar > 0.0
            ? static_cast<double>(total_refs) / best_scalar
            : 0.0;
    batch.refsPerSec =
        best_batch > 0.0
            ? static_cast<double>(total_refs) / best_batch
            : 0.0;
}

/** Record a trace for the trace-replay config; returns the app
 *  name ("trace:<path>") to run. */
std::string
recordReplayTrace(const ThroughputConfig &tc, std::uint64_t refs)
{
    const char *dir_env = std::getenv("SIPT_TRACE_DIR");
    const std::filesystem::path dir =
        dir_env != nullptr
            ? std::filesystem::path(dir_env)
            : std::filesystem::temp_directory_path() /
                  "sipt-bench-throughput";
    std::filesystem::create_directories(dir);
    const std::string path =
        (dir / "throughput-replay.sipttrace").string();
    sim::SystemConfig config = systemConfigFor(tc, refs);
    sim::recordTrace(tc.app, config, path);
    return "trace:" + path;
}

struct Row
{
    std::string name;
    std::string app;
    std::uint64_t refs = 0;
    Cell scalar;
    Cell batch;

    double
    speedup() const
    {
        return scalar.refsPerSec > 0.0
                   ? batch.refsPerSec / scalar.refsPerSec
                   : 0.0;
    }
};

Json
toJson(const std::vector<Row> &rows, std::uint64_t refs, int reps)
{
    Json root = Json::object();
    root.set("schema", "sipt-bench-throughput-v1");
    root.set("refs", refs);
    root.set("reps", static_cast<std::uint64_t>(reps));
    Json list = Json::array();
    for (const Row &row : rows) {
        Json j = Json::object();
        j.set("name", row.name);
        j.set("app", row.app);
        j.set("refs", row.refs);
        j.set("scalarRefsPerSec", row.scalar.refsPerSec);
        j.set("batchRefsPerSec", row.batch.refsPerSec);
        j.set("speedup", row.speedup());
        list.push(std::move(j));
    }
    root.set("configs", std::move(list));
    return root;
}

void
printRows(const std::vector<Row> &rows)
{
    std::printf("%-14s %-12s %14s %14s %8s\n", "config", "app",
                "scalar ref/s", "batch ref/s", "speedup");
    for (const Row &row : rows) {
        std::printf("%-14s %-12s %13.2fM %13.2fM %7.2fx\n",
                    row.name.c_str(), row.app.c_str(),
                    row.scalar.refsPerSec / 1e6,
                    row.batch.refsPerSec / 1e6, row.speedup());
    }
}

/** @return number of configs whose speedup regressed past tol. */
int
checkAgainst(const std::vector<Row> &rows,
             const std::string &baseline_path, double tolerance)
{
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr, "cannot open baseline %s\n",
                     baseline_path.c_str());
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::optional<Json> baseline = Json::parse(buf.str());
    if (!baseline) {
        std::fprintf(stderr, "cannot parse baseline %s\n",
                     baseline_path.c_str());
        return 1;
    }
    const Json &base_configs = baseline->get("configs");
    int failures = 0;
    for (const Row &row : rows) {
        std::optional<double> base_speedup;
        for (std::size_t i = 0; i < base_configs.size(); ++i) {
            const Json &entry = base_configs.at(i);
            if (entry.get("name").asString() == row.name) {
                base_speedup = entry.get("speedup").asDouble();
                break;
            }
        }
        if (!base_speedup) {
            std::printf("CHECK %-14s no baseline entry, skipped\n",
                        row.name.c_str());
            continue;
        }
        const double floor = *base_speedup * (1.0 - tolerance);
        const bool ok = row.speedup() >= floor;
        std::printf(
            "CHECK %-14s speedup %.2fx vs baseline %.2fx "
            "(floor %.2fx): %s\n",
            row.name.c_str(), row.speedup(), *base_speedup, floor,
            ok ? "ok" : "REGRESSED");
        if (!ok)
            ++failures;
    }
    return failures;
}

int
run(int argc, char **argv)
{
    std::uint64_t refs = 3'000'000;
    int reps = 3;
    std::string out_path;
    std::string check_path;
    double tolerance =
        envDouble("SIPT_BENCH_TOLERANCE", 0.20, 0.0, 100.0);
    // SIPT_REFS shrinks the run for smoke tests, exactly as it
    // does for the figure benches.
    refs = envU64("SIPT_REFS", refs, 1, std::uint64_t{1} << 40);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--refs")
            refs = std::strtoull(next(), nullptr, 10);
        else if (arg == "--reps")
            reps = std::atoi(next());
        else if (arg == "--out")
            out_path = next();
        else if (arg == "--check")
            check_path = next();
        else if (arg == "--tolerance")
            tolerance = std::strtod(next(), nullptr);
        else
            fatal("unknown argument ", arg);
    }
    if (reps < 1)
        fatal("--reps must be >= 1");

    std::vector<Row> rows;
    for (const ThroughputConfig &tc : configs()) {
        std::string app = tc.app;
        if (tc.name == "trace-replay")
            app = recordReplayTrace(tc, refs);
        Row row;
        row.name = tc.name;
        row.app = tc.app;
        row.refs = tc.multicore ? refs * quadMix().size() : refs;
        measurePair(tc, app, refs, reps, row.scalar, row.batch);
        // Throughput runs double as a cheap identity check: the
        // engines must agree on what they simulated.
        if (row.scalar.ipc != row.batch.ipc) {
            fatal("engine divergence on ", tc.name, ": scalar ipc ",
                  row.scalar.ipc, " vs batch ipc ", row.batch.ipc);
        }
        rows.push_back(row);
    }

    printRows(rows);

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write ", out_path);
        out << toJson(rows, refs, reps).dump() << "\n";
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (!check_path.empty())
        return checkAgainst(rows, check_path, tolerance) == 0 ? 0
                                                              : 1;
    return 0;
}

} // namespace
} // namespace sipt::bench

int
main(int argc, char **argv)
{
    return sipt::bench::run(argc, argv);
}
