/**
 * @file
 * Extension (Fig. 13-style): IPC of the translation-aware policy
 * pack — SIPT+IDB (combined), VESPA-gated combined, Revelator's
 * hashed translation table, and PCAX's PC-indexed delta predictor
 * — at 32 KiB / 2-way / 2-cycle on the OOO core, normalised to the
 * baseline. Rows mix partial-THP applications (where the combined
 * predictor provably wastes replays on huge pages) with 2 MiB-
 * backed synonym streams (all-huge translation), plus a THP-off
 * control under which the VESPA gate never fires and the policy
 * must be bit-identical to combined.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

namespace
{

/** One x-axis row; mixedHuge marks the partial-THP applications
 *  whose huge-page replays feed the fast-gain summary. */
struct Row
{
    const char *app;
    bool mixedHuge;
};

const Row kRows[] = {
    {"mcf", true},          {"gcc", true},
    {"graph500", true},     {"ycsb", true},
    {"libquantum", false},  {"GemsFDTD", false},
    {"synonym:shared-huge", false},
    {"synonym:shared-a4-k2-huge", false},
};

} // namespace

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 13x: VESPA / Revelator / PCAX policy pack, "
        "32KiB/2-way/2-cycle, OOO (normalised IPC)");

    TextTable t({"app", "comb", "vespa", "revel", "pcax",
                 "vespaGain", "hugeRepl"});
    std::vector<double> comb_v, vespa_v, rev_v, pcax_v, gain_v;
    bench::FigureMetrics fm("fig13x");

    const IndexingPolicy policies[] = {
        IndexingPolicy::SiptCombined, IndexingPolicy::SiptVespa,
        IndexingPolicy::SiptRevelator, IndexingPolicy::SiptPcax};

    // Submit the whole sweep, then fetch in print order.
    std::vector<std::array<bench::RunFuture, 5>> futures;
    for (const Row &row : kRows) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();

        std::array<bench::RunFuture, 5> f;
        f[0] = bench::sweep().enqueue(row.app, base);
        for (std::size_t p = 0; p < 4; ++p) {
            sim::SystemConfig cfg = base;
            cfg.l1Config = sim::L1Config::Sipt32K2;
            cfg.policy = policies[p];
            f[p + 1] = bench::sweep().enqueue(row.app, cfg);
        }
        futures.push_back(f);
    }

    // THP-off control: with no huge pages the gate is inert and
    // VESPA must reproduce combined exactly.
    sim::SystemConfig thp_off;
    thp_off.outOfOrder = true;
    thp_off.measureRefs = bench::measureRefs();
    thp_off.l1Config = sim::L1Config::Sipt32K2;
    thp_off.condition = sim::MemCondition::ThpOff;
    thp_off.policy = IndexingPolicy::SiptCombined;
    auto thp_comb = bench::sweep().enqueue("mcf", thp_off);
    thp_off.policy = IndexingPolicy::SiptVespa;
    auto thp_vespa = bench::sweep().enqueue("mcf", thp_off);

    std::uint64_t vespa_huge_bad = 0, comb_huge_bad = 0;
    double gain_huge_sum = 0.0;
    std::size_t gain_huge_rows = 0;

    for (std::size_t a = 0; a < std::size(kRows); ++a) {
        const std::string app = kRows[a].app;
        const auto r_base = futures[a][0].get();
        const auto r_comb = futures[a][1].get();
        const auto r_vespa = futures[a][2].get();
        const auto r_rev = futures[a][3].get();
        const auto r_pcax = futures[a][4].get();

        const double base_ipc = r_base.ipc;
        const double gain =
            r_vespa.fastFraction - r_comb.fastFraction;
        vespa_huge_bad += r_vespa.l1.hugeReplays +
                          r_vespa.l1.hugeBypassLosses;
        comb_huge_bad += r_comb.l1.hugeReplays +
                         r_comb.l1.hugeBypassLosses;
        if (kRows[a].mixedHuge) {
            gain_huge_sum += gain;
            ++gain_huge_rows;
        }

        t.beginRow();
        t.add(app);
        t.add(r_comb.ipc / base_ipc, 3);
        t.add(r_vespa.ipc / base_ipc, 3);
        t.add(r_rev.ipc / base_ipc, 3);
        t.add(r_pcax.ipc / base_ipc, 3);
        t.add(gain, 3);
        t.add(static_cast<double>(r_comb.l1.hugeReplays), 0);
        comb_v.push_back(r_comb.ipc / base_ipc);
        vespa_v.push_back(r_vespa.ipc / base_ipc);
        rev_v.push_back(r_rev.ipc / base_ipc);
        pcax_v.push_back(r_pcax.ipc / base_ipc);
        gain_v.push_back(gain);
        fm.value("apps." + app + ".combinedIpc",
                 r_comb.ipc / base_ipc);
        fm.value("apps." + app + ".vespaIpc",
                 r_vespa.ipc / base_ipc);
        fm.value("apps." + app + ".revelatorIpc",
                 r_rev.ipc / base_ipc);
        fm.value("apps." + app + ".pcaxIpc",
                 r_pcax.ipc / base_ipc);
        fm.value("apps." + app + ".vespaFastGain", gain);
        fm.counter("apps." + app + ".combinedHugeReplays",
                   r_comb.l1.hugeReplays);
        fm.counter("apps." + app + ".vespaHugeBad",
                   r_vespa.l1.hugeReplays +
                       r_vespa.l1.hugeBypassLosses);
    }

    const auto r_thp_comb = thp_comb.get();
    const auto r_thp_vespa = thp_vespa.get();
    const double thp_delta = r_thp_vespa.ipc - r_thp_comb.ipc;

    t.beginRow();
    t.add("Hmean");
    t.add(harmonicMean(comb_v), 3);
    t.add(harmonicMean(vespa_v), 3);
    t.add(harmonicMean(rev_v), 3);
    t.add(harmonicMean(pcax_v), 3);
    t.add(arithmeticMean(gain_v), 3);
    t.add("");
    fm.value("summary.hmeanCombined", harmonicMean(comb_v));
    fm.value("summary.hmeanVespa", harmonicMean(vespa_v));
    fm.value("summary.hmeanRevelator", harmonicMean(rev_v));
    fm.value("summary.hmeanPcax", harmonicMean(pcax_v));
    fm.value("summary.vespaHugeBad",
             static_cast<double>(vespa_huge_bad));
    fm.value("summary.combinedHugeBad",
             static_cast<double>(comb_huge_bad));
    fm.value("summary.vespaFastGainHuge",
             gain_huge_sum /
                 static_cast<double>(gain_huge_rows));
    fm.value("summary.thpOffVespaMinusCombined", thp_delta);
    fm.write();
    t.print(std::cout);

    std::cout << "\nTHP off (mcf): vespa IPC - combined IPC = "
              << thp_delta << " (gate inert, must be 0)\n"
              << "vespa huge replays+bypass losses: "
              << vespa_huge_bad << " (gate, must be 0); "
              << "combined: " << comb_huge_bad << "\n";
    bench::sweepFooter();

    std::cout << "\nExpected shape: vespa >= combined on "
                 "partial-THP apps (the gate converts their "
                 "huge-page replays into fast accesses), "
                 "identical under THP off; revelator/pcax track "
                 "combined within a few percent.\n";
    return 0;
}
