/**
 * @file
 * Fig. 13: IPC and additional L1 accesses of SIPT with the
 * combined bypass + IDB predictor (32 KiB / 2-way / 2-cycle) on
 * the OOO core, normalised to the baseline, with ideal shown.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 13: SIPT+IDB 32KiB/2-way/2-cycle, OOO "
        "(normalised IPC, extra accesses, ideal reference)");

    TextTable t({"app", "SIPT IPC", "ideal IPC", "extraAcc",
                 "fast%"});
    std::vector<double> sipt_v, ideal_v, extra_v;

    for (const auto &app : bench::apps()) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();
        const auto r_base = sim::runSingleCore(app, base);

        sim::SystemConfig cfg = base;
        cfg.l1Config = sim::L1Config::Sipt32K2;
        cfg.policy = IndexingPolicy::SiptCombined;
        const auto r = sim::runSingleCore(app, cfg);

        sim::SystemConfig icfg = cfg;
        icfg.policy = IndexingPolicy::Ideal;
        const auto ri = sim::runSingleCore(app, icfg);

        const double extra =
            static_cast<double>(r.l1.arrayAccesses) /
                static_cast<double>(r_base.l1.arrayAccesses) -
            1.0;

        t.beginRow();
        t.add(app);
        t.add(r.ipc / r_base.ipc, 3);
        t.add(ri.ipc / r_base.ipc, 3);
        t.add(extra, 3);
        t.add(100.0 * r.fastFraction, 1);
        sipt_v.push_back(r.ipc / r_base.ipc);
        ideal_v.push_back(ri.ipc / r_base.ipc);
        extra_v.push_back(extra);
    }
    t.beginRow();
    t.add("Hmean");
    t.add(harmonicMean(sipt_v), 3);
    t.add(harmonicMean(ideal_v), 3);
    t.add(arithmeticMean(extra_v), 3);
    t.add("");
    t.print(std::cout);

    std::cout << "\nPaper shape: +5.9% average (hmean), 2.3% "
                 "from ideal; >10% in h264ref, cactusADM, "
                 "calculix, leela_17, exchange2_17, gromacs; "
                 "never below baseline.\n";
    return 0;
}
