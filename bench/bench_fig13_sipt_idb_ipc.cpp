/**
 * @file
 * Fig. 13: IPC and additional L1 accesses of SIPT with the
 * combined bypass + IDB predictor (32 KiB / 2-way / 2-cycle) on
 * the OOO core, normalised to the baseline, with ideal shown.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 13: SIPT+IDB 32KiB/2-way/2-cycle, OOO "
        "(normalised IPC, extra accesses, ideal reference)");

    TextTable t({"app", "SIPT IPC", "ideal IPC", "extraAcc",
                 "fast%"});
    std::vector<double> sipt_v, ideal_v, extra_v;
    bench::FigureMetrics fm("fig13");

    // Submit the whole sweep, then fetch in print order.
    std::vector<std::array<bench::RunFuture, 3>> futures;
    for (const auto &app : bench::apps()) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();

        sim::SystemConfig cfg = base;
        cfg.l1Config = sim::L1Config::Sipt32K2;
        cfg.policy = IndexingPolicy::SiptCombined;

        sim::SystemConfig icfg = cfg;
        icfg.policy = IndexingPolicy::Ideal;

        futures.push_back({bench::sweep().enqueue(app, base),
                           bench::sweep().enqueue(app, cfg),
                           bench::sweep().enqueue(app, icfg)});
    }

    for (std::size_t a = 0; a < bench::apps().size(); ++a) {
        const auto &app = bench::apps()[a];
        const auto r_base = futures[a][0].get();
        const auto r = futures[a][1].get();
        const auto ri = futures[a][2].get();

        const double extra =
            static_cast<double>(r.l1.arrayAccesses) /
                static_cast<double>(r_base.l1.arrayAccesses) -
            1.0;

        t.beginRow();
        t.add(app);
        t.add(r.ipc / r_base.ipc, 3);
        t.add(ri.ipc / r_base.ipc, 3);
        t.add(extra, 3);
        t.add(100.0 * r.fastFraction, 1);
        sipt_v.push_back(r.ipc / r_base.ipc);
        ideal_v.push_back(ri.ipc / r_base.ipc);
        extra_v.push_back(extra);
        fm.value("apps." + app + ".siptIpc", r.ipc / r_base.ipc);
        fm.value("apps." + app + ".idealIpc",
                 ri.ipc / r_base.ipc);
        fm.value("apps." + app + ".extraAccess", extra);
        fm.value("apps." + app + ".fastFraction",
                 r.fastFraction);
    }
    t.beginRow();
    t.add("Hmean");
    t.add(harmonicMean(sipt_v), 3);
    t.add(harmonicMean(ideal_v), 3);
    t.add(arithmeticMean(extra_v), 3);
    t.add("");
    fm.value("summary.hmeanSipt", harmonicMean(sipt_v));
    fm.value("summary.hmeanIdeal", harmonicMean(ideal_v));
    fm.value("summary.meanExtra", arithmeticMean(extra_v));
    fm.write();
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: +5.9% average (hmean), 2.3% "
                 "from ideal; >10% in h264ref, cactusADM, "
                 "calculix, leela_17, exchange2_17, gromacs; "
                 "never below baseline.\n";
    return 0;
}
