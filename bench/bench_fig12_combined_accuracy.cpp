/**
 * @file
 * Fig. 12: accuracy of the combined bypass + IDB predictor when
 * predicting 1, 2, and 3 speculative index bits. Bars split into
 * correct speculation (perceptron said "unchanged" and was right)
 * and IDB hits (perceptron said "changed" and the IDB — or the
 * 1-bit reversal — supplied the right value); the remainder are
 * slow accesses with extra L1 array reads.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/bitops.hh"
#include "common/table.hh"
#include "predictor/combined.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 12: combined predictor accuracy per speculative "
        "bit count");

    const std::uint64_t refs = bench::measureRefs();
    TextTable t({"app", "bits", "correctSpec", "idbHit", "slow",
                 "fastTotal"});

    // One self-contained task per (app, bit count) on the sweep
    // engine's pool; rows print in submission order.
    struct Row
    {
        double cSpec, idbHit, slow, fast;
    };
    std::vector<std::shared_future<Row>> rows;
    for (const auto &app : bench::apps()) {
        for (unsigned k = 1; k <= 3; ++k) {
            rows.push_back(bench::sweep().async([app, k, refs] {
                bench::TraceLab lab(app);
                predictor::CombinedIndexPredictor combined(k);
                std::uint64_t c_spec = 0, idb_hit = 0, slow = 0;
                MemRef ref;
                for (std::uint64_t i = 0; i < refs; ++i) {
                    lab.workload.next(ref);
                    const Vpn vpn = ref.vaddr >> pageShift;
                    const Pfn pfn = lab.pfnOf(ref.vaddr);
                    const auto pa_bits =
                        static_cast<std::uint32_t>(pfn &
                                                   mask(k));
                    const auto pred =
                        combined.predict(ref.pc, vpn);
                    if (pred.bits == pa_bits) {
                        if (pred.source ==
                            predictor::IndexSource::VaBits) {
                            ++c_spec;
                        } else {
                            ++idb_hit;
                        }
                    } else {
                        ++slow;
                    }
                    combined.update(ref.pc, vpn, pfn);
                }
                const auto frac = [&](std::uint64_t n) {
                    return static_cast<double>(n) /
                           static_cast<double>(refs);
                };
                return Row{frac(c_spec), frac(idb_hit),
                           frac(slow),
                           frac(c_spec + idb_hit)};
            }));
        }
    }

    bench::FigureMetrics fm("fig12");
    std::vector<double> avg_fast(3, 0.0);
    std::size_t i = 0;
    for (const auto &app : bench::apps()) {
        for (unsigned k = 1; k <= 3; ++k) {
            const Row row = rows[i++].get();
            t.beginRow();
            t.add(app);
            t.add(std::uint64_t{k});
            t.add(row.cSpec, 3);
            t.add(row.idbHit, 3);
            t.add(row.slow, 3);
            t.add(row.fast, 3);
            avg_fast[k - 1] += row.fast;
            const std::string prefix = "apps." + app + ".bits" +
                                       std::to_string(k) + ".";
            fm.value(prefix + "correctSpec", row.cSpec);
            fm.value(prefix + "idbHit", row.idbHit);
            fm.value(prefix + "slow", row.slow);
            fm.value(prefix + "fast", row.fast);
        }
    }
    t.print(std::cout);
    bench::sweepFooter();

    const auto n = static_cast<double>(bench::apps().size());
    for (unsigned k = 1; k <= 3; ++k) {
        fm.value("summary.fast.bits" + std::to_string(k),
                 avg_fast[k - 1] / n);
    }
    fm.write();
    std::cout << "\nAverage fast fraction: 1-bit "
              << avg_fast[0] / n << ", 2-bit " << avg_fast[1] / n
              << ", 3-bit " << avg_fast[2] / n
              << "\nPaper shape: >90% fast with 1 bit; the "
                 "bypass-hostile apps (gcc, calculix, xz_17, "
                 "cactusADM, gromacs) recover to >70% fast via "
                 "the IDB.\n";
    return 0;
}
