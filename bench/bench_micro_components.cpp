/**
 * @file
 * Google-benchmark microbenchmarks of the core components: the
 * predictors (whose per-access cost must be negligible for the
 * paper's overhead claims to hold), the cache array, the TLB,
 * the buddy allocator, the DRAM timing model, and the sweep
 * engine's task-dispatch overhead.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "common/rng.hh"
#include "dram/dram.hh"
#include "os/buddy_allocator.hh"
#include "predictor/combined.hh"
#include "predictor/perceptron.hh"
#include "sim/sweep.hh"
#include "vm/tlb.hh"

namespace
{

using namespace sipt;

void
BM_PerceptronPredictTrain(benchmark::State &state)
{
    predictor::PerceptronBypassPredictor perceptron;
    Rng rng(1);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        const bool spec = perceptron.predictSpeculate(pc);
        benchmark::DoNotOptimize(spec);
        perceptron.train(pc, rng.chance(0.9));
        pc += 4;
    }
}
BENCHMARK(BM_PerceptronPredictTrain);

void
BM_CombinedPredict(benchmark::State &state)
{
    predictor::CombinedIndexPredictor combined(
        static_cast<std::uint32_t>(state.range(0)));
    Rng rng(2);
    std::uint64_t pc = 0x400000;
    Vpn vpn = 1000;
    for (auto _ : state) {
        const auto pred = combined.predict(pc, vpn);
        benchmark::DoNotOptimize(pred);
        combined.update(pc, vpn, vpn + 16);
        pc += 4;
        vpn += rng.below(4);
    }
}
BENCHMARK(BM_CombinedPredict)->Arg(1)->Arg(2)->Arg(3);

void
BM_CacheArrayLookupInsert(benchmark::State &state)
{
    cache::CacheGeometry geom;
    geom.sizeBytes = 32 * 1024;
    geom.assoc = static_cast<std::uint32_t>(state.range(0));
    cache::CacheArray array(geom);
    Rng rng(3);
    for (auto _ : state) {
        const Addr paddr = rng.below(1u << 20) << lineShift;
        const auto set = array.setOf(paddr);
        if (array.lookup(set, paddr) < 0)
            array.insert(set, paddr, false);
    }
}
BENCHMARK(BM_CacheArrayLookupInsert)->Arg(2)->Arg(8);

void
BM_TlbLookupInsert(benchmark::State &state)
{
    vm::Tlb tlb(vm::TlbParams{64, 4});
    Rng rng(4);
    for (auto _ : state) {
        const Vpn vpn = rng.below(4096);
        if (!tlb.lookup(vpn))
            tlb.insert(vpn);
    }
}
BENCHMARK(BM_TlbLookupInsert);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    os::BuddyAllocator buddy(1u << 20);
    std::vector<Pfn> live;
    Rng rng(5);
    for (auto _ : state) {
        if (live.size() < 1024 || rng.chance(0.5)) {
            if (auto pfn = buddy.allocate(0))
                live.push_back(*pfn);
        } else {
            const std::size_t idx = rng.below(live.size());
            buddy.free(live[idx], 0);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (Pfn pfn : live)
        buddy.free(pfn, 0);
}
BENCHMARK(BM_BuddyAllocFree);

void
BM_DramAccess(benchmark::State &state)
{
    dram::Dram dram;
    Rng rng(6);
    Cycles now = 0;
    for (auto _ : state) {
        const Addr paddr = rng.below(1u << 26) << lineShift;
        benchmark::DoNotOptimize(dram.access(paddr, now));
        now += 4;
    }
}
BENCHMARK(BM_DramAccess);

// Round-trip cost of submitting a trivial task to the sweep
// engine and waiting for its result — the per-job overhead every
// figure bench pays on top of the simulation itself.
void
BM_SweepRunnerDispatch(benchmark::State &state)
{
    sim::SweepRunner runner(sim::SweepOptions{
        static_cast<unsigned>(state.range(0)), "-"});
    std::uint64_t x = 0;
    for (auto _ : state) {
        auto fut = runner.async([x] { return x + 1; });
        x = fut.get();
    }
    benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_SweepRunnerDispatch)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
