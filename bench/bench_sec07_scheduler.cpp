/**
 * @file
 * Sec. VII-C: implications for speculative instruction
 * scheduling. The paper argues SIPT's mispredictions are rare
 * relative to the load-latency variability schedulers already
 * absorb (cache misses), and that the bypass predictor doubles as
 * a confidence estimator so cheap replay can serve most loads.
 *
 * This bench reports, per application: the L1 miss rate (the
 * existing replay source), the SIPT index-misprediction rate (the
 * new one), their ratio, and the fraction of loads the built-in
 * confidence estimator marks "certain" (perceptron speculates)
 * that indeed complete fast.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Sec. VII-C: SIPT mispredictions vs existing load "
        "latency variability (SIPT+IDB 32KiB/2-way)");

    TextTable t({"app", "L1 miss rate", "index mispred.",
                 "mispred/miss", "confident fast"});
    std::vector<double> ratio_v;

    // One SIPT+IDB run per app, all submitted up front.
    std::vector<bench::RunFuture> futures;
    for (const auto &app : bench::apps()) {
        sim::SystemConfig cfg;
        cfg.l1Config = sim::L1Config::Sipt32K2;
        cfg.policy = IndexingPolicy::SiptCombined;
        cfg.measureRefs = bench::measureRefs();
        futures.push_back(bench::sweep().enqueue(app, cfg));
    }

    for (std::size_t a = 0; a < bench::apps().size(); ++a) {
        const auto &app = bench::apps()[a];
        const auto r = futures[a].get();

        const double accesses =
            static_cast<double>(r.l1.accesses);
        const double miss_rate =
            static_cast<double>(r.l1.misses) / accesses;
        const double mispred =
            static_cast<double>(r.l1.spec.extraAccess) /
            accesses;
        const double confident_fast =
            static_cast<double>(r.l1.spec.correctSpeculation) /
            std::max(1.0, static_cast<double>(
                              r.l1.spec.correctSpeculation +
                              r.l1.spec.extraAccess +
                              r.l1.spec.idbHit));

        t.beginRow();
        t.add(app);
        t.add(miss_rate, 3);
        t.add(mispred, 4);
        t.add(miss_rate > 0 ? mispred / miss_rate : 0.0, 3);
        t.add(confident_fast, 3);
        if (miss_rate > 0)
            ratio_v.push_back(mispred / miss_rate);
    }
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nMean mispredictions-per-miss: "
              << arithmeticMean(ratio_v)
              << "\nPaper claim: SIPT mispredictions are a "
                 "fraction of the cache misses the scheduler "
                 "already replays around.\n";
    return 0;
}
