/**
 * @file
 * Ablation: how the OS allocation substrate creates (or destroys)
 * index-bit predictability — the mechanism behind Sec. VI of the
 * paper. Sweeps the buddy allocator's maximum order and the
 * paging policy (THP, coloring, random placement) for one
 * contiguity-sensitive application and reports the unchanged-bit
 * fraction and combined-predictor fast fraction.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/bitops.hh"
#include "common/table.hh"
#include "predictor/combined.hh"

namespace
{

using namespace sipt;

struct Sample
{
    double unchanged = 0.0;
    double fast = 0.0;
};

Sample
run(const std::string &app, unsigned max_order,
    os::PagingPolicy pol, std::uint64_t refs)
{
    os::BuddyAllocator buddy((4ull << 30) / pageSize, max_order);
    Rng rng(7);
    os::SystemAger ager(buddy);
    ager.age(20'000, 0.22, rng);
    os::AddressSpace as(buddy, pol, 8);
    workload::SyntheticWorkload wl(workload::appProfile(app), as,
                                   9);
    predictor::CombinedIndexPredictor combined(2);

    std::uint64_t unchanged = 0, fast = 0;
    MemRef ref;
    for (std::uint64_t i = 0; i < refs; ++i) {
        wl.next(ref);
        const Vpn vpn = ref.vaddr >> pageShift;
        const auto xlat = as.pageTable().translate(ref.vaddr);
        const Pfn pfn = xlat->paddr >> pageShift;
        if ((vpn & mask(2)) == (pfn & mask(2)))
            ++unchanged;
        const auto pred = combined.predict(ref.pc, vpn);
        if (pred.bits == (pfn & mask(2)))
            ++fast;
        combined.update(ref.pc, vpn, pfn);
    }
    return {static_cast<double>(unchanged) /
                static_cast<double>(refs),
            static_cast<double>(fast) /
                static_cast<double>(refs)};
}

} // namespace

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Ablation: allocation substrate vs predictability "
        "(app = gcc, 2 speculative bits)");

    const std::uint64_t refs = bench::measureRefs() / 2;
    TextTable t({"substrate", "unchanged-bits", "combined fast"});

    auto row = [&](const char *name, unsigned max_order,
                   os::PagingPolicy pol) {
        const Sample s = run("gcc", max_order, pol, refs);
        t.beginRow();
        t.add(name);
        t.add(s.unchanged, 3);
        t.add(s.fast, 3);
    };

    os::PagingPolicy thp;
    thp.thpChance = 0.9;
    os::PagingPolicy no_thp;
    no_thp.thpEnabled = false;
    os::PagingPolicy colored = no_thp;
    colored.coloringBits = 3;
    os::PagingPolicy random = no_thp;
    random.randomPlacement = true;

    row("buddy order 10 + THP 90%", 10, thp);
    row("buddy order 10, THP off", 10, no_thp);
    row("buddy order 4, THP off", 4, no_thp);
    row("buddy order 0 (no grouping)", 0, no_thp);
    row("page coloring (3 bits)", 10, colored);
    row("random placement", 10, random);
    t.print(std::cout);

    std::cout << "\nShape: contiguity (high buddy order, THP) "
                 "and coloring raise raw unchanged-bit rates; "
                 "the IDB keeps fast rates high until placement "
                 "is truly random.\n";
    return 0;
}
