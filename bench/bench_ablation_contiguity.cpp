/**
 * @file
 * Ablation: how the OS allocation substrate creates (or destroys)
 * index-bit predictability — the mechanism behind Sec. VI of the
 * paper. Sweeps the buddy allocator's maximum order and the
 * paging policy (THP, coloring, random placement) for one
 * contiguity-sensitive application and reports the unchanged-bit
 * fraction and combined-predictor fast fraction.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/bitops.hh"
#include "common/table.hh"
#include "predictor/combined.hh"

namespace
{

using namespace sipt;

struct Sample
{
    double unchanged = 0.0;
    double fast = 0.0;
};

Sample
run(const std::string &app, unsigned max_order,
    os::PagingPolicy pol, std::uint64_t refs)
{
    os::BuddyAllocator buddy((4ull << 30) / pageSize, max_order);
    Rng rng(7);
    os::SystemAger ager(buddy);
    ager.age(20'000, 0.22, rng);
    os::AddressSpace as(buddy, pol, 8);
    workload::SyntheticWorkload wl(workload::appProfile(app), as,
                                   9);
    predictor::CombinedIndexPredictor combined(2);

    std::uint64_t unchanged = 0, fast = 0;
    MemRef ref;
    for (std::uint64_t i = 0; i < refs; ++i) {
        wl.next(ref);
        const Vpn vpn = ref.vaddr >> pageShift;
        const auto xlat = as.pageTable().translate(ref.vaddr);
        const Pfn pfn = xlat->paddr >> pageShift;
        if ((vpn & mask(2)) == (pfn & mask(2)))
            ++unchanged;
        const auto pred = combined.predict(ref.pc, vpn);
        if (pred.bits == (pfn & mask(2)))
            ++fast;
        combined.update(ref.pc, vpn, pfn);
    }
    return {static_cast<double>(unchanged) /
                static_cast<double>(refs),
            static_cast<double>(fast) /
                static_cast<double>(refs)};
}

} // namespace

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Ablation: allocation substrate vs predictability "
        "(app = gcc, 2 speculative bits)");

    const std::uint64_t refs = bench::measureRefs() / 2;
    TextTable t({"substrate", "unchanged-bits", "combined fast"});

    os::PagingPolicy thp;
    thp.thpChance = 0.9;
    os::PagingPolicy no_thp;
    no_thp.thpEnabled = false;
    os::PagingPolicy colored = no_thp;
    colored.coloringBits = 3;
    os::PagingPolicy random = no_thp;
    random.randomPlacement = true;

    // Each substrate is a self-contained run; submit them all to
    // the engine, then print in submission order.
    struct Variant
    {
        const char *name;
        unsigned maxOrder;
        os::PagingPolicy pol;
    };
    const std::vector<Variant> variants = {
        {"buddy order 10 + THP 90%", 10, thp},
        {"buddy order 10, THP off", 10, no_thp},
        {"buddy order 4, THP off", 4, no_thp},
        {"buddy order 0 (no grouping)", 0, no_thp},
        {"page coloring (3 bits)", 10, colored},
        {"random placement", 10, random},
    };
    std::vector<std::shared_future<Sample>> rows;
    for (const auto &v : variants) {
        rows.push_back(bench::sweep().async([v, refs] {
            return run("gcc", v.maxOrder, v.pol, refs);
        }));
    }

    for (std::size_t i = 0; i < variants.size(); ++i) {
        const Sample s = rows[i].get();
        t.beginRow();
        t.add(variants[i].name);
        t.add(s.unchanged, 3);
        t.add(s.fast, 3);
    }
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nShape: contiguity (high buddy order, THP) "
                 "and coloring raise raw unchanged-bit rates; "
                 "the IDB keeps fast rates high until placement "
                 "is truly random.\n";
    return 0;
}
