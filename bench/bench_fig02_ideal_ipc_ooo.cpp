/**
 * @file
 * Fig. 2: IPC of the candidate L1 configurations modelled as
 * *ideal* caches (index always correct) on the OOO core with a
 * 3-level hierarchy, normalised to the 32 KiB 8-way baseline.
 * Includes the VIPT-feasible 16 KiB 4-way point.
 */

#include <iostream>
#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;
    using sim::L1Config;

    bench::figureHeader(
        "Fig. 2: IPC with ideal L1 configs, OOO core "
        "(normalised to 32KiB 8-way baseline)");

    const std::vector<std::pair<L1Config, IndexingPolicy>> cfgs = {
        {L1Config::Small16K4, IndexingPolicy::Vipt},
        {L1Config::Sipt32K2, IndexingPolicy::Ideal},
        {L1Config::Sipt32K4, IndexingPolicy::Ideal},
        {L1Config::Sipt64K4, IndexingPolicy::Ideal},
        {L1Config::Sipt128K4, IndexingPolicy::Ideal},
    };

    const std::vector<std::string> cfg_names = {
        "16K4w", "32K2w", "32K4w", "64K4w", "128K4w"};
    TextTable t({"app", "16K4w", "32K2w", "32K4w", "64K4w",
                 "128K4w"});
    std::map<std::size_t, std::vector<double>> speedups;
    bench::FigureMetrics fm("fig02");

    // Submit every run up front; the engine parallelises and
    // memoizes, and we fetch in submission order below.
    std::vector<bench::RunFuture> base_f;
    std::vector<std::vector<bench::RunFuture>> cfg_f;
    for (const auto &app : bench::apps()) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();
        base_f.push_back(bench::sweep().enqueue(app, base));

        cfg_f.emplace_back();
        for (const auto &[l1, policy] : cfgs) {
            sim::SystemConfig cfg = base;
            cfg.l1Config = l1;
            cfg.policy = policy;
            cfg_f.back().push_back(
                bench::sweep().enqueue(app, cfg));
        }
    }

    for (std::size_t a = 0; a < bench::apps().size(); ++a) {
        const auto r_base = base_f[a].get();
        t.beginRow();
        t.add(bench::apps()[a]);
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            const auto r = cfg_f[a][c].get();
            const double speedup = r.ipc / r_base.ipc;
            t.add(speedup, 3);
            speedups[c].push_back(speedup);
            fm.value("apps." + bench::apps()[a] + ".speedup." +
                         cfg_names[c],
                     speedup);
        }
    }
    t.beginRow();
    t.add("Hmean");
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        t.add(harmonicMean(speedups[c]), 3);
        fm.value("summary.hmean." + cfg_names[c],
                 harmonicMean(speedups[c]));
    }
    fm.write();
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: 32KiB 2-way (2-cycle) wins on "
                 "OOO, +8.2% average; 16KiB 4-way loses ~1.5% "
                 "on average despite its 2-cycle latency.\n";
    return 0;
}
