/**
 * @file
 * Fig. 17: cache-hierarchy energy of way prediction on the
 * baseline and composed with SIPT+IDB (32 KiB 2-way),
 * normalised to the baseline L1 without way prediction.
 *
 * Submits the same four variants as fig16 — each app's baseline
 * is simulated once and reused for every normalisation, and with
 * a warm run cache the whole binary is served from fig16's runs.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

namespace
{

using namespace sipt;

/** Same variant list as fig16 (baseline first). */
std::array<sim::SystemConfig, 4>
waypredVariants()
{
    sim::SystemConfig base;
    base.outOfOrder = true;
    base.measureRefs = bench::measureRefs();

    sim::SystemConfig wp = base;
    wp.wayPrediction = true;

    sim::SystemConfig scfg = base;
    scfg.l1Config = sim::L1Config::Sipt32K2;
    scfg.policy = IndexingPolicy::SiptCombined;

    sim::SystemConfig swp = scfg;
    swp.wayPrediction = true;

    return {base, wp, scfg, swp};
}

} // namespace

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 17: cache-hierarchy energy with way prediction "
        "(normalised to baseline)");

    TextTable t({"app", "base+WP", "SIPT", "SIPT+WP"});
    std::vector<double> wp_v, sipt_v, siptwp_v;

    const auto variants = waypredVariants();
    std::vector<std::array<bench::RunFuture, 4>> futures;
    for (const auto &app : bench::apps()) {
        futures.push_back(
            {bench::sweep().enqueue(app, variants[0]),
             bench::sweep().enqueue(app, variants[1]),
             bench::sweep().enqueue(app, variants[2]),
             bench::sweep().enqueue(app, variants[3])});
    }

    for (std::size_t a = 0; a < bench::apps().size(); ++a) {
        const auto r_base = futures[a][0].get();
        const auto r_wp = futures[a][1].get();
        const auto r_s = futures[a][2].get();
        const auto r_swp = futures[a][3].get();

        const double base_total = r_base.energy.total();
        t.beginRow();
        t.add(bench::apps()[a]);
        t.add(r_wp.energy.total() / base_total, 3);
        t.add(r_s.energy.total() / base_total, 3);
        t.add(r_swp.energy.total() / base_total, 3);
        wp_v.push_back(r_wp.energy.total() / base_total);
        sipt_v.push_back(r_s.energy.total() / base_total);
        siptwp_v.push_back(r_swp.energy.total() / base_total);
    }
    t.beginRow();
    t.add("Mean");
    t.add(arithmeticMean(wp_v), 3);
    t.add(arithmeticMean(sipt_v), 3);
    t.add(arithmeticMean(siptwp_v), 3);
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: WP saves ~24% on the baseline; "
                 "SIPT alone already saves most of the dynamic "
                 "energy, and WP on top adds ~2.2% more, stable "
                 "across apps.\n";
    return 0;
}
