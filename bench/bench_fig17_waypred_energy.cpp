/**
 * @file
 * Fig. 17: cache-hierarchy energy of way prediction on the
 * baseline and composed with SIPT+IDB (32 KiB 2-way),
 * normalised to the baseline L1 without way prediction.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 17: cache-hierarchy energy with way prediction "
        "(normalised to baseline)");

    TextTable t({"app", "base+WP", "SIPT", "SIPT+WP"});
    std::vector<double> wp_v, sipt_v, siptwp_v;

    for (const auto &app : bench::apps()) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();
        const auto r_base = sim::runSingleCore(app, base);

        sim::SystemConfig wp = base;
        wp.wayPrediction = true;
        const auto r_wp = sim::runSingleCore(app, wp);

        sim::SystemConfig scfg = base;
        scfg.l1Config = sim::L1Config::Sipt32K2;
        scfg.policy = IndexingPolicy::SiptCombined;
        const auto r_s = sim::runSingleCore(app, scfg);

        sim::SystemConfig swp = scfg;
        swp.wayPrediction = true;
        const auto r_swp = sim::runSingleCore(app, swp);

        const double base_total = r_base.energy.total();
        t.beginRow();
        t.add(app);
        t.add(r_wp.energy.total() / base_total, 3);
        t.add(r_s.energy.total() / base_total, 3);
        t.add(r_swp.energy.total() / base_total, 3);
        wp_v.push_back(r_wp.energy.total() / base_total);
        sipt_v.push_back(r_s.energy.total() / base_total);
        siptwp_v.push_back(r_swp.energy.total() / base_total);
    }
    t.beginRow();
    t.add("Mean");
    t.add(arithmeticMean(wp_v), 3);
    t.add(arithmeticMean(sipt_v), 3);
    t.add(arithmeticMean(siptwp_v), 3);
    t.print(std::cout);

    std::cout << "\nPaper shape: WP saves ~24% on the baseline; "
                 "SIPT alone already saves most of the dynamic "
                 "energy, and WP on top adds ~2.2% more, stable "
                 "across apps.\n";
    return 0;
}
