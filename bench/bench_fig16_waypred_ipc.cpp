/**
 * @file
 * Fig. 16: way prediction composed with SIPT. Groups per app:
 * baseline L1 + way prediction, SIPT+IDB (32 KiB 2-way), and
 * SIPT+IDB + way prediction — IPC normalised to the baseline L1
 * without way prediction, plus way-prediction accuracy.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 16: way prediction on baseline vs on SIPT "
        "(normalised IPC and WP accuracy)");

    TextTable t({"app", "base+WP", "SIPT", "SIPT+WP",
                 "WPacc base", "WPacc SIPT"});
    std::vector<double> wp_v, sipt_v, siptwp_v, acc_b, acc_s;

    for (const auto &app : bench::apps()) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();
        const auto r_base = sim::runSingleCore(app, base);

        sim::SystemConfig wp = base;
        wp.wayPrediction = true;
        const auto r_wp = sim::runSingleCore(app, wp);

        sim::SystemConfig scfg = base;
        scfg.l1Config = sim::L1Config::Sipt32K2;
        scfg.policy = IndexingPolicy::SiptCombined;
        const auto r_s = sim::runSingleCore(app, scfg);

        sim::SystemConfig swp = scfg;
        swp.wayPrediction = true;
        const auto r_swp = sim::runSingleCore(app, swp);

        t.beginRow();
        t.add(app);
        t.add(r_wp.ipc / r_base.ipc, 3);
        t.add(r_s.ipc / r_base.ipc, 3);
        t.add(r_swp.ipc / r_base.ipc, 3);
        t.add(100.0 * r_wp.wayPredAccuracy, 1);
        t.add(100.0 * r_swp.wayPredAccuracy, 1);
        wp_v.push_back(r_wp.ipc / r_base.ipc);
        sipt_v.push_back(r_s.ipc / r_base.ipc);
        siptwp_v.push_back(r_swp.ipc / r_base.ipc);
        acc_b.push_back(r_wp.wayPredAccuracy);
        acc_s.push_back(r_swp.wayPredAccuracy);
    }
    t.beginRow();
    t.add("Mean");
    t.add(harmonicMean(wp_v), 3);
    t.add(harmonicMean(sipt_v), 3);
    t.add(harmonicMean(siptwp_v), 3);
    t.add(100.0 * arithmeticMean(acc_b), 1);
    t.add(100.0 * arithmeticMean(acc_s), 1);
    t.print(std::cout);

    std::cout << "\nPaper shape: WP on the 8-way baseline is "
                 "89% accurate and costs ~2% IPC; on 2-way SIPT "
                 "accuracy rises to 97.3% and costs only ~0.3% "
                 "vs SIPT alone.\n";
    return 0;
}
