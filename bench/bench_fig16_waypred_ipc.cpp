/**
 * @file
 * Fig. 16: way prediction composed with SIPT. Groups per app:
 * baseline L1 + way prediction, SIPT+IDB (32 KiB 2-way), and
 * SIPT+IDB + way prediction — IPC normalised to the baseline L1
 * without way prediction, plus way-prediction accuracy.
 *
 * The four system variants are declared once and every app's
 * baseline is simulated exactly once and reused for every
 * normalisation; fig17 submits the identical variants, so with a
 * warm run cache (SIPT_RUN_CACHE) the two binaries share all of
 * their simulations.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

namespace
{

using namespace sipt;

/** The four variants of Figs. 16/17: baseline, baseline+WP,
 *  SIPT+IDB, SIPT+IDB+WP — baseline first so every other column
 *  normalises against index 0. */
std::array<sim::SystemConfig, 4>
waypredVariants()
{
    sim::SystemConfig base;
    base.outOfOrder = true;
    base.measureRefs = bench::measureRefs();

    sim::SystemConfig wp = base;
    wp.wayPrediction = true;

    sim::SystemConfig scfg = base;
    scfg.l1Config = sim::L1Config::Sipt32K2;
    scfg.policy = IndexingPolicy::SiptCombined;

    sim::SystemConfig swp = scfg;
    swp.wayPrediction = true;

    return {base, wp, scfg, swp};
}

} // namespace

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 16: way prediction on baseline vs on SIPT "
        "(normalised IPC and WP accuracy)");

    TextTable t({"app", "base+WP", "SIPT", "SIPT+WP",
                 "WPacc base", "WPacc SIPT"});
    std::vector<double> wp_v, sipt_v, siptwp_v, acc_b, acc_s;

    const auto variants = waypredVariants();
    std::vector<std::array<bench::RunFuture, 4>> futures;
    for (const auto &app : bench::apps()) {
        futures.push_back(
            {bench::sweep().enqueue(app, variants[0]),
             bench::sweep().enqueue(app, variants[1]),
             bench::sweep().enqueue(app, variants[2]),
             bench::sweep().enqueue(app, variants[3])});
    }

    for (std::size_t a = 0; a < bench::apps().size(); ++a) {
        const auto r_base = futures[a][0].get();
        const auto r_wp = futures[a][1].get();
        const auto r_s = futures[a][2].get();
        const auto r_swp = futures[a][3].get();

        t.beginRow();
        t.add(bench::apps()[a]);
        t.add(r_wp.ipc / r_base.ipc, 3);
        t.add(r_s.ipc / r_base.ipc, 3);
        t.add(r_swp.ipc / r_base.ipc, 3);
        t.add(100.0 * r_wp.wayPredAccuracy, 1);
        t.add(100.0 * r_swp.wayPredAccuracy, 1);
        wp_v.push_back(r_wp.ipc / r_base.ipc);
        sipt_v.push_back(r_s.ipc / r_base.ipc);
        siptwp_v.push_back(r_swp.ipc / r_base.ipc);
        acc_b.push_back(r_wp.wayPredAccuracy);
        acc_s.push_back(r_swp.wayPredAccuracy);
    }
    t.beginRow();
    t.add("Mean");
    t.add(harmonicMean(wp_v), 3);
    t.add(harmonicMean(sipt_v), 3);
    t.add(harmonicMean(siptwp_v), 3);
    t.add(100.0 * arithmeticMean(acc_b), 1);
    t.add(100.0 * arithmeticMean(acc_s), 1);
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: WP on the 8-way baseline is "
                 "89% accurate and costs ~2% IPC; on 2-way SIPT "
                 "accuracy rises to 97.3% and costs only ~0.3% "
                 "vs SIPT alone.\n";
    return 0;
}
