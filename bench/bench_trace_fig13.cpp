/**
 * @file
 * Trace-driven variant of Fig. 13: records each app's reference
 * stream + VA->PA layout to a trace file (the paper's Macsim
 * methodology), then reproduces the SIPT+IDB comparison entirely
 * from the files via "trace:<path>" apps.
 *
 * Two claims are checked in-table:
 *  - fidelity: the replayed run's functional-event digest equals
 *    the live run's (SIPT_CHECK harness), and IPC matches;
 *  - the Fig. 13 result itself survives the trace round-trip
 *    (normalised IPC from replay == from live simulation).
 *
 * A final row schedules four recorded traces onto the Fig. 15
 * quad-core model (multi-program trace replay).
 *
 * Trace files land in SIPT_TRACE_DIR (default: ./trace-bench).
 */

#include <array>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Trace replay: Fig. 13 SIPT+IDB from recorded traces "
        "(live-vs-replay fidelity + multi-program replay)");

    const std::vector<std::string> apps = {
        "mcf",     "h264ref",  "gcc",
        "libquantum", "gromacs", "graph500"};

    std::string dir = "trace-bench";
    if (const char *env = std::getenv("SIPT_TRACE_DIR"))
        dir = env;
    std::filesystem::create_directories(dir);

    // The recording config: the stream depends only on workload
    // identity (app, seed, condition, footprint), never on the
    // cache design points compared below.
    sim::SystemConfig base;
    base.outOfOrder = true;
    base.measureRefs = bench::measureRefs();

    // Phase 1: record every trace in parallel on the pool.
    std::vector<std::shared_future<std::string>> recordings;
    for (const auto &app : apps) {
        const std::string path =
            dir + "/" + app + ".sipttrace";
        recordings.push_back(bench::sweep().async([=] {
            sim::recordTrace(app, base, path);
            return path;
        }));
    }
    std::vector<std::string> paths;
    paths.reserve(apps.size());
    for (auto &f : recordings)
        paths.push_back(f.get());

    // Phase 2: Fig. 13 from the files, cross-checked against the
    // live runs with the differential checker armed.
    sim::SystemConfig sipt_cfg = base;
    sipt_cfg.l1Config = sim::L1Config::Sipt32K2;
    sipt_cfg.policy = IndexingPolicy::SiptCombined;
    sipt_cfg.check = true;

    std::vector<std::array<bench::RunFuture, 3>> futures;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        futures.push_back(
            {bench::sweep().enqueue(apps[a], base),
             bench::sweep().enqueue(apps[a], sipt_cfg),
             bench::sweep().enqueue("trace:" + paths[a],
                                    sipt_cfg)});
    }

    TextTable t({"app", "SIPT IPC", "replay IPC", "fidelity",
                 "digest"});
    bench::FigureMetrics fm("trace13");
    std::vector<double> live_v, replay_v;
    bool all_match = true;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto r_base = futures[a][0].get();
        const auto r_live = futures[a][1].get();
        const auto r_replay = futures[a][2].get();

        const double live = r_live.ipc / r_base.ipc;
        const double replay = r_replay.ipc / r_base.ipc;
        const bool digest_ok =
            r_live.checkDigest == r_replay.checkDigest &&
            r_live.checkDigest != 0 &&
            r_live.checkFailure.empty() &&
            r_replay.checkFailure.empty();
        all_match = all_match && digest_ok;

        t.beginRow();
        t.add(apps[a]);
        t.add(live, 3);
        t.add(replay, 3);
        t.add(replay / live, 3);
        t.add(digest_ok ? "match" : "DIVERGED");
        live_v.push_back(live);
        replay_v.push_back(replay);
        fm.value("apps." + apps[a] + ".liveIpc", live);
        fm.value("apps." + apps[a] + ".replayIpc", replay);
        fm.value("apps." + apps[a] + ".digestMatch",
                 digest_ok ? 1.0 : 0.0);
    }
    t.beginRow();
    t.add("Hmean");
    t.add(harmonicMean(live_v), 3);
    t.add(harmonicMean(replay_v), 3);
    t.add(harmonicMean(replay_v) / harmonicMean(live_v), 3);
    t.add(all_match ? "match" : "DIVERGED");
    fm.value("summary.hmeanLive", harmonicMean(live_v));
    fm.value("summary.hmeanReplay", harmonicMean(replay_v));
    fm.value("summary.allDigestsMatch", all_match ? 1.0 : 0.0);
    t.print(std::cout);

    // Phase 3: multi-program replay — four recorded traces on
    // the shared-LLC quad-core model.
    std::vector<std::string> mix;
    for (std::size_t a = 0; a < 4 && a < paths.size(); ++a)
        mix.push_back("trace:" + paths[a]);
    const auto multi =
        bench::sweep().enqueueMulticore(mix, base).get();
    std::cout << "\nQuad-core trace replay (" << mix.size()
              << " traces): sum-IPC = " << multi.sumIpc << "\n";
    fm.value("multicore.sumIpc", multi.sumIpc);
    fm.write();
    bench::sweepFooter();

    if (!all_match) {
        std::cout << "ERROR: replay diverged from live run\n";
        return 1;
    }
    std::cout << "\nEvery replayed run is digest-identical to "
                 "its live counterpart; the Fig. 13 comparison "
                 "survives the trace round-trip.\n";
    return 0;
}
