/**
 * @file
 * Tab. III + Fig. 15: quad-core multiprogrammed evaluation.
 * Sum-of-IPC speedup of SIPT+IDB for all four SIPT L1
 * configurations, plus extra L1 accesses and cache-hierarchy
 * energy for the 32 KiB 2-way point, per mix and on average.
 * Speedups are relative to the quad-core with the baseline L1.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;
    using sim::L1Config;

    bench::figureHeader(
        "Fig. 15: SIPT+IDB on an OOO quad core (Tab. III "
        "mixes; sum-of-IPC speedup, extra accesses, energy)");

    const auto &mixes = workload::multicoreMixes();
    const std::vector<L1Config> cfgs = sim::siptConfigs();

    TextTable t({"mix", "32K2w", "32K4w", "64K4w", "128K4w",
                 "extraAcc(32K2w)", "energy(32K2w)"});
    std::vector<std::vector<double>> speedups(cfgs.size());
    std::vector<double> energies, extras;

    // Submit every quad-core job through the engine up front.
    using MultiFuture = std::shared_future<sim::MulticoreResult>;
    std::vector<MultiFuture> base_f;
    std::vector<std::vector<MultiFuture>> cfg_f;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs() / 2;
        base.footprintScale = 0.5;
        base_f.push_back(
            bench::sweep().enqueueMulticore(mixes[m], base));
        cfg_f.emplace_back();
        for (const auto cfg_id : cfgs) {
            sim::SystemConfig cfg = base;
            cfg.l1Config = cfg_id;
            cfg.policy = IndexingPolicy::SiptCombined;
            cfg_f.back().push_back(
                bench::sweep().enqueueMulticore(mixes[m], cfg));
        }
    }

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto r_base = base_f[m].get();

        t.beginRow();
        t.add("mix" + std::to_string(m));

        double extra_32k2 = 0.0;
        double energy_32k2 = 0.0;
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            const auto r = cfg_f[m][c].get();
            const double speedup = r.sumIpc / r_base.sumIpc;
            t.add(speedup, 3);
            speedups[c].push_back(speedup);
            if (cfgs[c] == L1Config::Sipt32K2) {
                std::uint64_t acc = 0, acc_base = 0;
                for (std::size_t k = 0; k < r.perCore.size();
                     ++k) {
                    acc += r.perCore[k].l1.arrayAccesses;
                    acc_base +=
                        r_base.perCore[k].l1.arrayAccesses;
                }
                extra_32k2 = static_cast<double>(acc) /
                                 static_cast<double>(acc_base) -
                             1.0;
                energy_32k2 = r.energy.total() /
                              r_base.energy.total();
            }
        }
        t.add(extra_32k2, 3);
        t.add(energy_32k2, 3);
        extras.push_back(extra_32k2);
        energies.push_back(energy_32k2);
    }
    t.beginRow();
    t.add("Average");
    for (std::size_t c = 0; c < cfgs.size(); ++c)
        t.add(arithmeticMean(speedups[c]), 3);
    t.add(arithmeticMean(extras), 3);
    t.add(arithmeticMean(energies), 3);
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: 32KiB 2-way performs best, "
                 "+8.1% average sum-of-IPC; total cache energy "
                 "-15.6%; mix-to-mix variability is lower than "
                 "app-to-app.\n";
    return 0;
}
