/**
 * @file
 * Shared helpers for the figure-regeneration benchmark binaries.
 *
 * Each bench_figNN binary reproduces one table or figure of the
 * SIPT paper (see DESIGN.md's experiment index): it runs the
 * relevant sweep and prints the same rows/series the paper reports,
 * normalised the same way (IPC and energy relative to the baseline
 * L1; harmonic-mean speedups; arithmetic-mean energies).
 */

#ifndef SIPT_BENCH_BENCH_UTIL_HH
#define SIPT_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "os/address_space.hh"
#include "os/buddy_allocator.hh"
#include "os/fragmenter.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/profile.hh"
#include "workload/synthetic.hh"

namespace sipt::bench
{

/** Apps on the x-axis of the per-application figures. */
inline const std::vector<std::string> &
apps()
{
    return workload::figureApps();
}

/** Number of measured references per run (SIPT_REFS overrides). */
inline std::uint64_t
measureRefs()
{
    return sim::defaultMeasureRefs();
}

/**
 * Apps used for the (very wide) sensitivity sweeps; a documented
 * subset spanning the three behaviour classes so the bench
 * finishes in minutes. SIPT_ALL_APPS=1 runs every app.
 */
inline std::vector<std::string>
sensitivityApps()
{
    if (std::getenv("SIPT_ALL_APPS") != nullptr)
        return apps();
    return {"mcf",      "h264ref",  "gcc",     "libquantum",
            "calculix", "GemsFDTD", "gromacs", "graph500",
            "ycsb",     "leela_17"};
}

/**
 * Trace-level speculation statistics for one application: runs the
 * allocation phase and a reference stream, comparing VA and PA
 * index bits without any cache model (Figs. 5, 9, 12 are purely
 * properties of the address stream and predictors).
 */
struct TraceLab
{
    /** Physical memory conditioned before any app allocation. */
    struct ConditionedMemory
    {
        os::BuddyAllocator buddy;
        Rng rng;
        os::SystemAger ager;
        os::MemoryFragmenter fragmenter;

        ConditionedMemory(sim::MemCondition condition,
                          std::uint64_t seed)
            : buddy((4ull << 30) / pageSize), rng(seed),
              ager(buddy), fragmenter(buddy)
        {
            ager.age(20'000, 0.22, rng);
            if (condition == sim::MemCondition::Fragmented)
                fragmenter.fragmentTo(0.95, 9, rng, 0.30);
        }
    };

    ConditionedMemory mem;
    os::AddressSpace as;
    workload::SyntheticWorkload workload;

    /**
     * @param app profile name
     * @param condition physical-memory condition
     * @param seed experiment seed
     */
    TraceLab(const std::string &app,
             sim::MemCondition condition = sim::MemCondition::Normal,
             std::uint64_t seed = 42)
        : mem(condition, seed),
          as(mem.buddy, pagingPolicy(app, condition), seed + 1),
          workload(workload::appProfile(app), as, seed + 2)
    {
    }

    /** Translate a VA via the (already populated) page table. */
    Pfn
    pfnOf(Addr vaddr) const
    {
        const auto xlat = as.pageTable().translate(vaddr);
        return xlat ? (xlat->paddr >> pageShift) : invalidPfn;
    }

    /** True when vaddr lies in a huge-page mapping. */
    bool
    isHuge(Addr vaddr) const
    {
        return as.pageTable().isHugeMapped(vaddr);
    }

  private:
    static os::PagingPolicy
    pagingPolicy(const std::string &app,
                 sim::MemCondition condition)
    {
        os::PagingPolicy pol;
        const auto &profile = workload::appProfile(app);
        switch (condition) {
          case sim::MemCondition::Normal:
          case sim::MemCondition::Fragmented:
            pol.thpEnabled = true;
            pol.thpChance = profile.thpAffinity;
            break;
          case sim::MemCondition::ThpOff:
            pol.thpEnabled = false;
            break;
          case sim::MemCondition::NoContiguity:
            pol.thpEnabled = false;
            pol.randomPlacement = true;
            break;
        }
        return pol;
    }
};

/** Print a standard figure header. */
inline void
figureHeader(const std::string &what)
{
    std::cout << "\n=== " << what << " ===\n"
              << "(refs/run = " << measureRefs() << ")\n\n";
}

/**
 * The process-wide sweep engine every bench submits its runs
 * through (SIPT_THREADS workers, memoized via SIPT_RUN_CACHE).
 * Benches enqueue every job up front and then fetch futures in
 * print order, so tables are byte-identical for any thread count.
 */
inline sim::SweepRunner &
sweep()
{
    return sim::SweepRunner::global();
}

/** Shorthand for a future single-core result. */
using RunFuture = std::shared_future<sim::RunResult>;

/**
 * Print the engine's jobs/sec and cache-hit counters. Goes to
 * stderr so stdout (the figure tables) stays byte-comparable
 * between runs and thread counts.
 */
inline void
sweepFooter()
{
    sim::SweepRunner::global().printStats(std::cerr);
}

/** Directory for per-figure metrics JSON (SIPT_METRICS env);
 *  empty = metrics export off. */
inline std::string
metricsDir()
{
    if (const char *env = std::getenv("SIPT_METRICS"))
        return env;
    return "";
}

/**
 * Machine-readable companion of one figure's printed table: the
 * bench records per-app values and summary statistics under dotted
 * paths, and write() drops "<SIPT_METRICS>/<figure>.json" for
 * tools/sipt-claims. Everything is a no-op (and nothing touches
 * stdout either way) when SIPT_METRICS is unset, so figure output
 * stays byte-identical.
 */
class FigureMetrics
{
  public:
    explicit FigureMetrics(std::string figure)
        : figure_(std::move(figure)), dir_(metricsDir())
    {
    }

    bool enabled() const { return !dir_.empty(); }

    /** Record one floating-point metric. */
    void
    value(const std::string &path, double v)
    {
        if (enabled())
            registry_.setValue(path, v);
    }

    /** Record one counter. */
    void
    counter(const std::string &path, std::uint64_t v)
    {
        if (enabled())
            registry_.setCounter(path, v);
    }

    /** Record every field of @p result under @p prefix. */
    void
    run(const std::string &prefix, const sim::RunResult &result)
    {
        if (enabled())
            sim::fillRunMetrics(registry_, prefix, result);
    }

    /** Write the figure's JSON file (no-op when disabled). */
    void
    write()
    {
        if (enabled()) {
            sim::writeMetricsJson(dir_ + "/" + figure_ + ".json",
                                  figure_, measureRefs(),
                                  registry_);
        }
    }

  private:
    std::string figure_;
    std::string dir_;
    MetricsRegistry registry_;
};

} // namespace sipt::bench

#endif // SIPT_BENCH_BENCH_UTIL_HH
