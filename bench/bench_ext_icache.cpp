/**
 * @file
 * Extension experiment: SIPT for the L1 *instruction* cache — the
 * paper's future-work hypothesis (Sec. III): instruction working
 * sets are small and I-TLB hit rates high, so speculative index
 * bits should be at least as predictable as on the D-side.
 *
 * For small-text and large-text code profiles this measures the
 * I-TLB hit rate, the unchanged-bit fraction (1-3 bits), and the
 * combined predictor's fast fraction, then runs an I-side SIPT
 * cache (32 KiB 2-way) and reports fast accesses and hit rate
 * against the D-side averages from Fig. 12.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "common/bitops.hh"
#include "common/table.hh"
#include "predictor/combined.hh"
#include "sipt/l1_cache.hh"
#include "vm/mmu.hh"
#include "workload/instruction_stream.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Extension: SIPT-I (instruction-cache SIPT, "
        "32KiB/2-way, combined predictor)");

    const std::uint64_t refs = bench::measureRefs();
    TextTable t({"code profile", "indexing", "ITLB hit",
                 "unchanged 2b", "fast (combined)", "I$ hit",
                 "extraAcc"});

    // Two SIPT-I predictor-indexing choices: raw fetch-chunk
    // address (the D-side analogue — aliases badly because hot
    // code has thousands of chunks) and fetch *page* (deltas are
    // per-page properties, and the hot page set is tiny). Each
    // (indexing, profile) cell is a self-contained simulation;
    // submit all four to the engine, then print in order.
    struct Row
    {
        std::string profile;
        double itlbHit, unchanged2, fast, hit, extra;
    };
    std::vector<std::shared_future<Row>> rows;
    std::vector<bool> row_page_indexed;
    for (const bool page_indexed : {false, true}) {
    for (const auto &profile :
         {workload::smallCodeProfile(),
          workload::largeCodeProfile()}) {
        row_page_indexed.push_back(page_indexed);
        rows.push_back(bench::sweep().async(
            [page_indexed, profile, refs] {
            os::BuddyAllocator buddy((4ull << 30) / pageSize);
            Rng rng(21);
            os::SystemAger ager(buddy);
            ager.age(20'000, 0.22, rng);
            os::PagingPolicy pol;
            pol.thpChance = profile.thpAffinity;
            os::AddressSpace as(buddy, pol, 22);
            workload::InstructionStream fetch(profile, as, 23);

            vm::Mmu mmu;
            dram::Dram dram;
            cache::TimingCache llc(sim::llcPreset(true, 1));
            const auto l2 = sim::l2Preset();
            cache::BelowL1 below(&l2, llc, dram);
            L1Params p =
                sim::l1Preset(sim::L1Config::Sipt32K2,
                              IndexingPolicy::SiptCombined);
            p.name = "L1I";
            SiptL1Cache l1i(p, below);

            std::uint64_t unchanged2 = 0;
            MemRef ref;
            Cycles now = 0;
            for (std::uint64_t i = 0; i < refs; ++i) {
                fetch.next(ref);
                if (page_indexed)
                    ref.pc = (ref.vaddr >> pageShift) << 2;
                const auto xlat =
                    mmu.translate(ref.vaddr, as.pageTable());
                const Vpn vpn = ref.vaddr >> pageShift;
                const Pfn pfn = xlat.paddr >> pageShift;
                unchanged2 +=
                    ((vpn & mask(2)) == (pfn & mask(2)));
                l1i.access(ref, xlat, now);
                now += 2;
            }

            const auto &small = mmu.l1Small();
            const auto &huge = mmu.l1Huge();
            const double itlb_hit =
                static_cast<double>(small.hits() +
                                    huge.hits()) /
                static_cast<double>(
                    small.hits() + small.misses() +
                    huge.hits() + huge.misses());

            return Row{profile.name, itlb_hit,
                       static_cast<double>(unchanged2) /
                           static_cast<double>(refs),
                       l1i.fastFraction(), l1i.hitRate(),
                       static_cast<double>(
                           l1i.stats().extraArrayAccesses) /
                           static_cast<double>(refs)};
        }));
    }
    }

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row row = rows[i].get();
        t.beginRow();
        t.add(row.profile);
        t.add(row_page_indexed[i] ? "fetch-page"
                                  : "fetch-chunk");
        t.add(row.itlbHit, 4);
        t.add(row.unchanged2, 3);
        t.add(row.fast, 3);
        t.add(row.hit, 3);
        t.add(row.extra, 4);
    }
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nHypothesis check: fast fractions should be "
                 "at or above the D-side Fig. 12 average "
                 "(~0.92 at 2 bits), with near-perfect I-TLB "
                 "hit rates.\n";
    return 0;
}
