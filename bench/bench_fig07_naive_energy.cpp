/**
 * @file
 * Fig. 7: total cache-hierarchy energy of naive SIPT
 * (32 KiB / 2-way / 2-cycle) on the OOO core, normalised to the
 * baseline L1, with the ideal cache and the dynamic-energy
 * series the paper also plots.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 7: cache-hierarchy energy of naive SIPT "
        "32KiB/2-way (normalised to baseline)");

    TextTable t({"app", "naive E", "ideal E", "dynE sipt",
                 "dynE base"});
    std::vector<double> naive_v, ideal_v;
    bench::FigureMetrics fm("fig07");

    // Submit the whole sweep, then fetch in print order.
    std::vector<std::array<bench::RunFuture, 3>> futures;
    for (const auto &app : bench::apps()) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();

        sim::SystemConfig cfg = base;
        cfg.l1Config = sim::L1Config::Sipt32K2;
        cfg.policy = IndexingPolicy::SiptNaive;

        sim::SystemConfig icfg = cfg;
        icfg.policy = IndexingPolicy::Ideal;

        futures.push_back({bench::sweep().enqueue(app, base),
                           bench::sweep().enqueue(app, cfg),
                           bench::sweep().enqueue(app, icfg)});
    }

    for (std::size_t a = 0; a < bench::apps().size(); ++a) {
        const auto &app = bench::apps()[a];
        const auto r_base = futures[a][0].get();
        const auto r = futures[a][1].get();
        const auto ri = futures[a][2].get();

        const double base_total = r_base.energy.total();
        t.beginRow();
        t.add(app);
        t.add(r.energy.total() / base_total, 3);
        t.add(ri.energy.total() / base_total, 3);
        t.add(r.energy.dynamicTotal() / base_total, 3);
        t.add(r_base.energy.dynamicTotal() / base_total, 3);
        naive_v.push_back(r.energy.total() / base_total);
        ideal_v.push_back(ri.energy.total() / base_total);
        fm.value("apps." + app + ".naiveEnergy",
                 r.energy.total() / base_total);
        fm.value("apps." + app + ".idealEnergy",
                 ri.energy.total() / base_total);
    }
    t.beginRow();
    t.add("Mean");
    t.add(arithmeticMean(naive_v), 3);
    t.add(arithmeticMean(ideal_v), 3);
    t.add("");
    t.add("");
    fm.value("summary.meanNaive", arithmeticMean(naive_v));
    fm.value("summary.meanIdeal", arithmeticMean(ideal_v));
    fm.write();
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nPaper shape: naive SIPT reduces total cache "
                 "energy to ~74.4% on average, ~8.5% short of "
                 "ideal because of wasted replay accesses.\n";
    return 0;
}
