/**
 * @file
 * Fig. 9: breakdown of the perceptron speculation-bypass
 * predictor's outcomes — correct speculation, correct bypass,
 * opportunity loss, extra access — for 1, 2, and 3 speculative
 * index bits.
 *
 * Like the paper, the predictor is not warmed up; all
 * mispredictions are included.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/bitops.hh"
#include "common/table.hh"
#include "predictor/perceptron.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 9: bypass-perceptron outcome breakdown per "
        "speculative bit count (cSpec/cByp/oppLoss/extra)");

    const std::uint64_t refs = bench::measureRefs();
    TextTable t({"app", "bits", "correctSpec", "correctBypass",
                 "oppLoss", "extraAccess", "accuracy"});

    std::vector<double> avg_acc(3, 0.0);
    for (const auto &app : bench::apps()) {
        // One address stream per bit count so predictor state
        // never leaks across configurations.
        for (unsigned k = 1; k <= 3; ++k) {
            bench::TraceLab lab(app);
            predictor::PerceptronBypassPredictor perceptron;
            std::uint64_t c_spec = 0, c_byp = 0, opp = 0,
                          extra = 0;
            MemRef ref;
            for (std::uint64_t i = 0; i < refs; ++i) {
                lab.workload.next(ref);
                const Vpn vpn = ref.vaddr >> pageShift;
                const Pfn pfn = lab.pfnOf(ref.vaddr);
                const bool unchanged =
                    (vpn & mask(k)) == (pfn & mask(k));
                const bool spec =
                    perceptron.predictSpeculate(ref.pc);
                if (spec && unchanged)
                    ++c_spec;
                else if (spec && !unchanged)
                    ++extra;
                else if (!spec && unchanged)
                    ++opp;
                else
                    ++c_byp;
                perceptron.train(ref.pc, unchanged);
            }
            const auto frac = [&](std::uint64_t n) {
                return static_cast<double>(n) /
                       static_cast<double>(refs);
            };
            t.beginRow();
            t.add(app);
            t.add(std::uint64_t{k});
            t.add(frac(c_spec), 3);
            t.add(frac(c_byp), 3);
            t.add(frac(opp), 3);
            t.add(frac(extra), 3);
            t.add(frac(c_spec + c_byp), 3);
            avg_acc[k - 1] += frac(c_spec + c_byp);
        }
    }
    t.print(std::cout);

    const auto n = static_cast<double>(bench::apps().size());
    std::cout << "\nAverage accuracy: 1-bit "
              << avg_acc[0] / n << ", 2-bit " << avg_acc[1] / n
              << ", 3-bit " << avg_acc[2] / n
              << "\nPaper shape: >90% accuracy everywhere, few "
                 "extra accesses, negligible opportunity loss.\n";
    return 0;
}
