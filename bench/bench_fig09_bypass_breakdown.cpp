/**
 * @file
 * Fig. 9: breakdown of the perceptron speculation-bypass
 * predictor's outcomes — correct speculation, correct bypass,
 * opportunity loss, extra access — for 1, 2, and 3 speculative
 * index bits.
 *
 * Like the paper, the predictor is not warmed up; all
 * mispredictions are included.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/bitops.hh"
#include "common/table.hh"
#include "predictor/perceptron.hh"

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 9: bypass-perceptron outcome breakdown per "
        "speculative bit count (cSpec/cByp/oppLoss/extra)");

    const std::uint64_t refs = bench::measureRefs();
    TextTable t({"app", "bits", "correctSpec", "correctBypass",
                 "oppLoss", "extraAccess", "accuracy"});

    // One task per (app, bit count), so each analysis owns its
    // address stream and predictor state never leaks across
    // configurations — which also makes them trivially parallel.
    struct Row
    {
        double cSpec, cByp, opp, extra, acc;
    };
    std::vector<std::shared_future<Row>> rows;
    for (const auto &app : bench::apps()) {
        for (unsigned k = 1; k <= 3; ++k) {
            rows.push_back(bench::sweep().async([app, k, refs] {
                bench::TraceLab lab(app);
                predictor::PerceptronBypassPredictor perceptron;
                std::uint64_t c_spec = 0, c_byp = 0, opp = 0,
                              extra = 0;
                MemRef ref;
                for (std::uint64_t i = 0; i < refs; ++i) {
                    lab.workload.next(ref);
                    const Vpn vpn = ref.vaddr >> pageShift;
                    const Pfn pfn = lab.pfnOf(ref.vaddr);
                    const bool unchanged =
                        (vpn & mask(k)) == (pfn & mask(k));
                    const bool spec =
                        perceptron.predictSpeculate(ref.pc);
                    if (spec && unchanged)
                        ++c_spec;
                    else if (spec && !unchanged)
                        ++extra;
                    else if (!spec && unchanged)
                        ++opp;
                    else
                        ++c_byp;
                    perceptron.train(ref.pc, unchanged);
                }
                const auto frac = [&](std::uint64_t n) {
                    return static_cast<double>(n) /
                           static_cast<double>(refs);
                };
                return Row{frac(c_spec), frac(c_byp), frac(opp),
                           frac(extra), frac(c_spec + c_byp)};
            }));
        }
    }

    bench::FigureMetrics fm("fig09");
    std::vector<double> avg_acc(3, 0.0);
    std::size_t i = 0;
    for (const auto &app : bench::apps()) {
        for (unsigned k = 1; k <= 3; ++k) {
            const Row row = rows[i++].get();
            t.beginRow();
            t.add(app);
            t.add(std::uint64_t{k});
            t.add(row.cSpec, 3);
            t.add(row.cByp, 3);
            t.add(row.opp, 3);
            t.add(row.extra, 3);
            t.add(row.acc, 3);
            avg_acc[k - 1] += row.acc;
            const std::string prefix = "apps." + app + ".bits" +
                                       std::to_string(k) + ".";
            fm.value(prefix + "correctSpec", row.cSpec);
            fm.value(prefix + "correctBypass", row.cByp);
            fm.value(prefix + "oppLoss", row.opp);
            fm.value(prefix + "extraAccess", row.extra);
            fm.value(prefix + "accuracy", row.acc);
        }
    }
    t.print(std::cout);
    bench::sweepFooter();

    const auto n = static_cast<double>(bench::apps().size());
    for (unsigned k = 1; k <= 3; ++k) {
        fm.value("summary.accuracy.bits" + std::to_string(k),
                 avg_acc[k - 1] / n);
    }
    fm.write();
    std::cout << "\nAverage accuracy: 1-bit "
              << avg_acc[0] / n << ", 2-bit " << avg_acc[1] / n
              << ", 3-bit " << avg_acc[2] / n
              << "\nPaper shape: >90% accuracy everywhere, few "
                 "extra accesses, negligible opportunity loss.\n";
    return 0;
}
