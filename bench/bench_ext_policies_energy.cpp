/**
 * @file
 * Extension (Fig. 14-style): cache-hierarchy energy of the
 * translation-aware policy pack — combined, VESPA-gated combined,
 * Revelator, PCAX — at 32 KiB / 2-way, normalised to the
 * baseline. The VESPA gate skips the predictor read entirely on
 * huge-page accesses, so on huge-page-heavy rows its L1 dynamic
 * energy must sit measurably below combined's (predictor-read
 * fraction plus the replays it no longer pays for).
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"

namespace
{

/** One x-axis row; hugeHeavy marks rows with near-total 2 MiB
 *  coverage, where the gated predictor-read saving is maximal. */
struct Row
{
    const char *app;
    bool hugeHeavy;
};

const Row kRows[] = {
    {"mcf", false},        {"gcc", false},
    {"graph500", false},   {"ycsb", false},
    {"libquantum", true},  {"GemsFDTD", true},
    {"synonym:shared-huge", true},
    {"synonym:shared-a4-k2-huge", true},
};

} // namespace

int
main()
{
    using namespace sipt;

    bench::figureHeader(
        "Fig. 14x: VESPA / Revelator / PCAX policy pack energy, "
        "32KiB/2-way (normalised to baseline)");

    TextTable t({"app", "comb E", "vespa E", "revel E", "pcax E",
                 "dynSave"});
    std::vector<double> comb_v, vespa_v, rev_v, pcax_v;
    bench::FigureMetrics fm("fig14x");

    const IndexingPolicy policies[] = {
        IndexingPolicy::SiptCombined, IndexingPolicy::SiptVespa,
        IndexingPolicy::SiptRevelator, IndexingPolicy::SiptPcax};

    // Submit the whole sweep, then fetch in print order.
    std::vector<std::array<bench::RunFuture, 5>> futures;
    for (const Row &row : kRows) {
        sim::SystemConfig base;
        base.outOfOrder = true;
        base.measureRefs = bench::measureRefs();

        std::array<bench::RunFuture, 5> f;
        f[0] = bench::sweep().enqueue(row.app, base);
        for (std::size_t p = 0; p < 4; ++p) {
            sim::SystemConfig cfg = base;
            cfg.l1Config = sim::L1Config::Sipt32K2;
            cfg.policy = policies[p];
            f[p + 1] = bench::sweep().enqueue(row.app, cfg);
        }
        futures.push_back(f);
    }

    double saving_huge_sum = 0.0;
    std::size_t saving_huge_rows = 0;

    for (std::size_t a = 0; a < std::size(kRows); ++a) {
        const std::string app = kRows[a].app;
        const auto r_base = futures[a][0].get();
        const auto r_comb = futures[a][1].get();
        const auto r_vespa = futures[a][2].get();
        const auto r_rev = futures[a][3].get();
        const auto r_pcax = futures[a][4].get();

        const double base_total = r_base.energy.total();
        // Relative L1 dynamic-energy saving of the gate over
        // combined on the same row (predictor reads skipped on
        // huge accesses + replays avoided).
        const double dyn_save =
            (r_comb.energy.l1Dynamic -
             r_vespa.energy.l1Dynamic) /
            r_comb.energy.l1Dynamic;
        if (kRows[a].hugeHeavy) {
            saving_huge_sum += dyn_save;
            ++saving_huge_rows;
        }

        t.beginRow();
        t.add(app);
        t.add(r_comb.energy.total() / base_total, 3);
        t.add(r_vespa.energy.total() / base_total, 3);
        t.add(r_rev.energy.total() / base_total, 3);
        t.add(r_pcax.energy.total() / base_total, 3);
        t.add(dyn_save, 4);
        comb_v.push_back(r_comb.energy.total() / base_total);
        vespa_v.push_back(r_vespa.energy.total() / base_total);
        rev_v.push_back(r_rev.energy.total() / base_total);
        pcax_v.push_back(r_pcax.energy.total() / base_total);
        fm.value("apps." + app + ".combinedEnergy",
                 r_comb.energy.total() / base_total);
        fm.value("apps." + app + ".vespaEnergy",
                 r_vespa.energy.total() / base_total);
        fm.value("apps." + app + ".revelatorEnergy",
                 r_rev.energy.total() / base_total);
        fm.value("apps." + app + ".pcaxEnergy",
                 r_pcax.energy.total() / base_total);
        fm.value("apps." + app + ".vespaL1DynSaving", dyn_save);
    }

    t.beginRow();
    t.add("Mean");
    t.add(arithmeticMean(comb_v), 3);
    t.add(arithmeticMean(vespa_v), 3);
    t.add(arithmeticMean(rev_v), 3);
    t.add(arithmeticMean(pcax_v), 3);
    t.add("");
    fm.value("summary.meanCombined", arithmeticMean(comb_v));
    fm.value("summary.meanVespa", arithmeticMean(vespa_v));
    fm.value("summary.meanRevelator", arithmeticMean(rev_v));
    fm.value("summary.meanPcax", arithmeticMean(pcax_v));
    fm.value("summary.vespaL1DynSavingHuge",
             saving_huge_sum /
                 static_cast<double>(saving_huge_rows));
    fm.write();
    t.print(std::cout);
    bench::sweepFooter();

    std::cout << "\nExpected shape: all four policies land in the "
                 "fig. 14 energy band; vespa strictly below "
                 "combined on the huge-page-heavy rows (gated "
                 "predictor reads are free).\n";
    return 0;
}
