/**
 * @file
 * Fig. 15 extension: quad-core mixes with shared-page synonyms.
 *
 * The paper's correctness argument (Sec. III) is that SIPT keeps
 * lines under their physical set with full physical tags, so
 * synonyms need no extra machinery. This bench puts that claim
 * under multiprogrammed load: quad-core mixes where cores map the
 * same physical segment at different virtual bases (including a
 * 2 MiB huge-page variant), plus per-core COW and alias scenarios.
 *
 * Three numbers per mix:
 *  - sum-of-IPC speedup of SIPT+IDB (32 KiB 2-way) over the
 *    baseline L1, as in Fig. 15 — synonym traffic must not erode
 *    the speedup;
 *  - VIVT strawman invalidations per kilo-access: the reverse-map
 *    bookkeeping a virtually tagged L1 (Desai & Deshmukh, arXiv
 *    2108.00444) would have needed for the same stream, counted in
 *    lockstep by the checker. Nonzero on every synonym mix, zero
 *    machinery in SIPT;
 *  - check failures: golden-model divergences plus per-core digest
 *    mismatches between SiptCombined and Ideal on identical
 *    geometry. Must be zero — synonyms are free *and* correct.
 */

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace sipt;
    using sim::L1Config;

    bench::figureHeader(
        "Fig. 15 (synonyms): SIPT+IDB quad core with shared-page "
        "mixes (speedup, VIVT strawman bookkeeping, check)");

    const std::vector<std::vector<std::string>> mixes = {
        // Two cores sharing one segment beside two figure apps.
        {"synonym:shared-a2-k1", "synonym:shared-a2-k1", "mcf",
         "gcc"},
        // All four cores over the same shared segment, skewed.
        {"synonym:shared-a4-k2", "synonym:shared-a4-k2",
         "synonym:shared-a4-k2", "synonym:shared-a4-k2"},
        // Huge-page shared segment (chunk-granular skew).
        {"synonym:shared-a2-k1-huge", "synonym:shared-a2-k1-huge",
         "xalancbmk_17", "ycsb"},
        // Per-core private multi-mappings: fork-style COW and
        // mmap aliasing beside figure apps.
        {"synonym:cow-a3-k1", "synonym:alias-a2-k3", "mcf",
         "omnetpp"},
    };

    // Checking stays on for every run so the golden model and the
    // VIVT strawman ride along; `check` is part of the memo key,
    // so these never collide with unchecked Fig. 15 entries.
    sim::SystemConfig base;
    base.outOfOrder = true;
    base.measureRefs = bench::measureRefs() / 2;
    base.footprintScale = 0.5;
    base.check = true;

    using MultiFuture = std::shared_future<sim::MulticoreResult>;
    std::vector<MultiFuture> base_f, sipt_f, ideal_f;
    for (const auto &mix : mixes) {
        sim::SystemConfig sipt = base;
        sipt.l1Config = L1Config::Sipt32K2;
        sipt.policy = IndexingPolicy::SiptCombined;
        sim::SystemConfig ideal = sipt;
        ideal.policy = IndexingPolicy::Ideal;
        base_f.push_back(
            bench::sweep().enqueueMulticore(mix, base));
        sipt_f.push_back(
            bench::sweep().enqueueMulticore(mix, sipt));
        ideal_f.push_back(
            bench::sweep().enqueueMulticore(mix, ideal));
    }

    bench::FigureMetrics fm("fig15syn");
    TextTable t({"mix", "speedup", "vivtInval/kAcc",
                 "dirtyFwd/kAcc", "checkFailures"});
    std::vector<double> speedups, inval_rates;
    std::uint64_t total_failures = 0;

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto r_base = base_f[m].get();
        const auto r_sipt = sipt_f[m].get();
        const auto r_ideal = ideal_f[m].get();

        const double speedup = r_sipt.sumIpc / r_base.sumIpc;
        speedups.push_back(speedup);

        std::uint64_t failures = 0;
        std::uint64_t accesses = 0;
        std::uint64_t invals = 0;
        std::uint64_t forwards = 0;
        for (std::size_t c = 0; c < r_sipt.perCore.size(); ++c) {
            const auto &sipt_core = r_sipt.perCore[c];
            const auto &ideal_core = r_ideal.perCore[c];
            accesses += sipt_core.l1.accesses;
            invals += sipt_core.vivtInvalidations;
            forwards += sipt_core.vivtDirtyForwards;
            if (!sipt_core.checkFailure.empty() ||
                !ideal_core.checkFailure.empty() ||
                !r_base.perCore[c].checkFailure.empty()) {
                ++failures;
            }
            // Same geometry, same workload: SiptCombined and
            // Ideal must agree byte-for-byte on the functional
            // stream even with cross-core synonyms in play.
            if (sipt_core.checkDigest != ideal_core.checkDigest ||
                sipt_core.checkEvents != ideal_core.checkEvents) {
                ++failures;
            }
        }
        const double inval_rate =
            accesses ? 1000.0 * static_cast<double>(invals) /
                           static_cast<double>(accesses)
                     : 0.0;
        const double fwd_rate =
            accesses ? 1000.0 * static_cast<double>(forwards) /
                           static_cast<double>(accesses)
                     : 0.0;
        inval_rates.push_back(inval_rate);
        total_failures += failures;

        t.beginRow();
        t.add("mix" + std::to_string(m));
        t.add(speedup, 3);
        t.add(inval_rate, 2);
        t.add(fwd_rate, 2);
        t.add(static_cast<double>(failures), 0);

        const std::string prefix = "mix" + std::to_string(m);
        fm.value(prefix + ".speedup", speedup);
        fm.value(prefix + ".vivtInvalPerKiloAccess", inval_rate);
        fm.value(prefix + ".vivtDirtyFwdPerKiloAccess", fwd_rate);
        fm.counter(prefix + ".checkFailures", failures);
        for (std::size_t c = 0; c < r_sipt.perCore.size(); ++c) {
            fm.run(prefix + ".core" + std::to_string(c),
                   r_sipt.perCore[c]);
        }
    }

    t.beginRow();
    t.add("Summary");
    t.add(harmonicMean(speedups), 3);
    t.add(arithmeticMean(inval_rates), 2);
    t.add("");
    t.add(static_cast<double>(total_failures), 0);
    t.print(std::cout);
    bench::sweepFooter();

    fm.value("summary.hmeanSpeedup", harmonicMean(speedups));
    fm.value("summary.vivtInvalPerKiloAccess",
             arithmeticMean(inval_rates));
    fm.counter("summary.checkFailures", total_failures);
    fm.write();

    std::cout << "\nPaper shape: synonym-heavy mixes keep the "
                 "Fig. 15 speedup (physical sets + physical tags "
                 "make synonyms a non-event), while a VIVT L1 "
                 "would have paid nonzero reverse-map "
                 "invalidations on every shared mix.\n";
    return total_failures == 0 ? 0 : 1;
}
