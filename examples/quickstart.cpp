/**
 * @file
 * Quickstart: run one application on the baseline VIPT L1 and on a
 * SIPT L1 with the combined predictor, and compare IPC, fast-access
 * fraction, and cache-hierarchy energy.
 *
 * Usage: quickstart [app] (default mcf; see workload/profile.cc
 * for the full list of application names).
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/system.hh"

int
main(int argc, char **argv)
{
    using namespace sipt;

    const std::string app = argc > 1 ? argv[1] : "mcf";

    sim::SystemConfig base;
    base.outOfOrder = true;
    base.l1Config = sim::L1Config::Baseline32K8;
    base.policy = IndexingPolicy::Vipt;
    base.measureRefs = sim::defaultMeasureRefs();

    sim::SystemConfig sipt_cfg = base;
    sipt_cfg.l1Config = sim::L1Config::Sipt32K2;
    sipt_cfg.policy = IndexingPolicy::SiptCombined;

    sim::SystemConfig ideal_cfg = sipt_cfg;
    ideal_cfg.policy = IndexingPolicy::Ideal;

    std::cout << "SIPT quickstart: " << app << " on an OOO core "
              << "(3-level hierarchy)\n\n";

    const auto r_base = sim::runSingleCore(app, base);
    const auto r_sipt = sim::runSingleCore(app, sipt_cfg);
    const auto r_ideal = sim::runSingleCore(app, ideal_cfg);

    TextTable t({"config", "IPC", "speedup", "fast%", "L1 hit%",
                 "energy (uJ)", "rel. energy"});
    auto row = [&](const char *name, const sim::RunResult &r) {
        t.beginRow();
        t.add(name);
        t.add(r.ipc, 3);
        t.add(r.ipc / r_base.ipc, 3);
        t.add(100.0 * r.fastFraction, 1);
        t.add(100.0 * r.l1HitRate, 1);
        t.add(r.energy.total() / 1000.0, 1);
        t.add(r.energy.total() / r_base.energy.total(), 3);
    };
    row("VIPT 32KiB 8-way 4cyc", r_base);
    row("SIPT 32KiB 2-way 2cyc", r_sipt);
    row("Ideal 32KiB 2-way 2cyc", r_ideal);
    t.print(std::cout);

    std::cout << "\nSIPT speculation outcomes: correct-spec="
              << r_sipt.l1.spec.correctSpeculation
              << " idb-hit=" << r_sipt.l1.spec.idbHit
              << " extra-access=" << r_sipt.l1.spec.extraAccess
              << "\nhuge-page coverage: "
              << 100.0 * r_sipt.hugeCoverage << "%\n";
    return 0;
}
