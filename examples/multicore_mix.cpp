/**
 * @file
 * Example: quad-core multiprogrammed run (the paper's Fig. 15
 * setting) on one Tab. III mix, showing per-core behaviour.
 *
 * Usage: multicore_mix [mix-index 0..10] (default 5:
 * h264ref + cactusADM + calculix + tonto)
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/system.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    using namespace sipt;

    const std::size_t mix_idx =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
    const auto &mixes = workload::multicoreMixes();
    if (mix_idx >= mixes.size()) {
        std::cerr << "mix index must be 0.."
                  << mixes.size() - 1 << "\n";
        return 1;
    }
    const auto &mix = mixes[mix_idx];

    std::cout << "Quad-core mix" << mix_idx << ":";
    for (const auto &app : mix)
        std::cout << ' ' << app;
    std::cout << "\n\n";

    sim::SystemConfig base;
    base.measureRefs = sim::defaultMeasureRefs() / 2;
    base.footprintScale = 0.5;
    const auto r_base = sim::runMulticore(mix, base);

    sim::SystemConfig cfg = base;
    cfg.l1Config = sim::L1Config::Sipt32K2;
    cfg.policy = IndexingPolicy::SiptCombined;
    const auto r = sim::runMulticore(mix, cfg);

    TextTable t({"core", "app", "base IPC", "SIPT IPC",
                 "speedup", "fast%", "L1 hit%"});
    for (std::size_t c = 0; c < mix.size(); ++c) {
        t.beginRow();
        t.add(std::to_string(c));
        t.add(mix[c]);
        t.add(r_base.perCore[c].ipc, 3);
        t.add(r.perCore[c].ipc, 3);
        t.add(r.perCore[c].ipc / r_base.perCore[c].ipc, 3);
        t.add(100.0 * r.perCore[c].fastFraction, 1);
        t.add(100.0 * r.perCore[c].l1HitRate, 1);
    }
    t.print(std::cout);

    std::cout << "\nsum-of-IPC speedup: "
              << r.sumIpc / r_base.sumIpc
              << "\ncache-hierarchy energy vs baseline: "
              << r.energy.total() / r_base.energy.total()
              << "\n";
    return 0;
}
