/**
 * @file
 * Example: explore the L1 design space for one application.
 *
 * For each candidate geometry this prints the CACTI-like latency
 * and energy, whether VIPT could build it, and the measured IPC
 * under three policies (ideal oracle, SIPT+IDB, naive SIPT) —
 * i.e. how much of the unconstrained design space SIPT actually
 * delivers. This is the paper's core argument in one screen.
 *
 * Usage: design_space [app] (default perlbench)
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "energy/cacti_model.hh"
#include "sim/system.hh"

int
main(int argc, char **argv)
{
    using namespace sipt;
    using sim::L1Config;

    const std::string app = argc > 1 ? argv[1] : "perlbench";

    sim::SystemConfig base;
    base.measureRefs = sim::defaultMeasureRefs();
    const auto r_base = sim::runSingleCore(app, base);

    std::cout << "L1 design space for " << app
              << " (normalised to 32KiB 8-way VIPT, IPC "
              << r_base.ipc << ")\n\n";

    TextTable t({"config", "lat", "nJ/acc", "VIPT?", "ideal",
                 "SIPT+IDB", "naive"});
    const std::vector<L1Config> configs = {
        L1Config::Small16K4, L1Config::Sipt32K2,
        L1Config::Sipt32K4, L1Config::Sipt64K4,
        L1Config::Sipt128K4};

    for (const auto config : configs) {
        const auto params =
            sim::l1Preset(config, IndexingPolicy::Ideal);
        const bool vipt_ok =
            params.geometry.speculativeBits() == 0;

        t.beginRow();
        t.add(sim::l1ConfigName(config));
        t.add(std::uint64_t{params.hitLatency});
        t.add(params.accessEnergyNj, 3);
        t.add(vipt_ok ? "yes" : "no");

        for (const auto policy :
             {IndexingPolicy::Ideal,
              IndexingPolicy::SiptCombined,
              IndexingPolicy::SiptNaive}) {
            if (vipt_ok && policy != IndexingPolicy::Ideal) {
                // Feasible configs need no speculation; run them
                // as plain VIPT once.
                sim::SystemConfig cfg = base;
                cfg.l1Config = config;
                cfg.policy = IndexingPolicy::Vipt;
                const auto r = sim::runSingleCore(app, cfg);
                t.add(r.ipc / r_base.ipc, 3);
                continue;
            }
            sim::SystemConfig cfg = base;
            cfg.l1Config = config;
            cfg.policy = policy;
            const auto r = sim::runSingleCore(app, cfg);
            t.add(r.ipc / r_base.ipc, 3);
        }
    }
    t.print(std::cout);

    std::cout << "\nReading guide: 'ideal' is the unconstrained "
                 "oracle; SIPT+IDB should track it closely; "
                 "naive SIPT falls behind when index bits "
                 "change under translation.\n";
    return 0;
}
