/**
 * @file
 * A command-line experiment driver over the full public API:
 * choose an application, L1 configuration, indexing policy,
 * memory condition, core type, and options, and get the metrics
 * (optionally as CSV for scripting).
 *
 * Usage:
 *   sipt_explorer [--app NAME] [--l1 base|16k4|32k2|32k4|64k4|128k4]
 *                 [--policy vipt|ideal|naive|bypass|combined|
 *                           vespa|revelator|pcax]
 *                 [--inorder] [--waypred] [--radix-walker]
 *                 [--condition normal|frag|thpoff|nocontig]
 *                 [--refs N] [--seed N] [--csv]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/report.hh"
#include "sim/system.hh"
#include "workload/profile.hh"

namespace
{

using namespace sipt;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: sipt_explorer [--app NAME] [--l1 CFG] "
           "[--policy P] [--inorder]\n"
           "                     [--waypred] [--radix-walker] "
           "[--condition C]\n"
           "                     [--refs N] [--seed N] [--csv] "
           "[--list-apps]\n";
    std::exit(2);
}

sim::L1Config
parseL1(const std::string &s)
{
    if (s == "base")
        return sim::L1Config::Baseline32K8;
    if (s == "16k4")
        return sim::L1Config::Small16K4;
    if (s == "32k2")
        return sim::L1Config::Sipt32K2;
    if (s == "32k4")
        return sim::L1Config::Sipt32K4;
    if (s == "64k4")
        return sim::L1Config::Sipt64K4;
    if (s == "128k4")
        return sim::L1Config::Sipt128K4;
    usage();
}

IndexingPolicy
parsePolicy(const std::string &s)
{
    if (s == "vipt")
        return IndexingPolicy::Vipt;
    if (s == "ideal")
        return IndexingPolicy::Ideal;
    if (s == "naive")
        return IndexingPolicy::SiptNaive;
    if (s == "bypass")
        return IndexingPolicy::SiptBypass;
    if (s == "combined")
        return IndexingPolicy::SiptCombined;
    if (s == "vespa")
        return IndexingPolicy::SiptVespa;
    if (s == "revelator")
        return IndexingPolicy::SiptRevelator;
    if (s == "pcax")
        return IndexingPolicy::SiptPcax;
    usage();
}

sim::MemCondition
parseCondition(const std::string &s)
{
    if (s == "normal")
        return sim::MemCondition::Normal;
    if (s == "frag")
        return sim::MemCondition::Fragmented;
    if (s == "thpoff")
        return sim::MemCondition::ThpOff;
    if (s == "nocontig")
        return sim::MemCondition::NoContiguity;
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = "mcf";
    sim::SystemConfig cfg;
    cfg.l1Config = sim::L1Config::Sipt32K2;
    cfg.policy = IndexingPolicy::SiptCombined;
    cfg.measureRefs = sim::defaultMeasureRefs();
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--app") {
            app = value();
        } else if (arg == "--l1") {
            cfg.l1Config = parseL1(value());
        } else if (arg == "--policy") {
            cfg.policy = parsePolicy(value());
        } else if (arg == "--condition") {
            cfg.condition = parseCondition(value());
        } else if (arg == "--inorder") {
            cfg.outOfOrder = false;
        } else if (arg == "--waypred") {
            cfg.wayPrediction = true;
        } else if (arg == "--radix-walker") {
            cfg.radixWalker = true;
        } else if (arg == "--refs") {
            cfg.measureRefs = std::strtoull(
                value().c_str(), nullptr, 10);
        } else if (arg == "--seed") {
            cfg.seed =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--list-apps") {
            for (const auto &name : workload::allApps())
                std::cout << name << '\n';
            return 0;
        } else {
            usage();
        }
    }

    const auto r = sim::runSingleCore(app, cfg);

    if (csv) {
        sim::writeCsv(std::cout,
                      {{"explorer",
                        std::string(sim::l1ConfigName(
                            cfg.l1Config)) +
                            "/" + policyName(cfg.policy),
                        r}});
        return 0;
    }

    std::cout << app << " on " << sim::l1ConfigName(cfg.l1Config)
              << " (" << policyName(cfg.policy) << ", "
              << (cfg.outOfOrder ? "OOO" : "in-order") << ", "
              << sim::conditionName(cfg.condition) << ")\n\n";
    TextTable t({"metric", "value"});
    auto row = [&](const char *name, double v, int prec = 3) {
        t.beginRow();
        t.add(name);
        t.add(v, prec);
    };
    row("IPC", r.ipc);
    row("L1 hit rate", r.l1HitRate);
    row("L1 MPKI", r.l1Mpki, 1);
    row("fast-access fraction", r.fastFraction);
    row("extra array accesses",
        static_cast<double>(r.l1.extraArrayAccesses));
    row("huge-page coverage", r.hugeCoverage);
    row("huge accesses", static_cast<double>(r.l1.hugeAccesses),
        0);
    row("huge replays", static_cast<double>(r.l1.hugeReplays), 0);
    row("huge bypass losses",
        static_cast<double>(r.l1.hugeBypassLosses), 0);
    row("D-TLB hit rate", r.dtlbHitRate, 4);
    row("page walks", static_cast<double>(r.pageWalks), 0);
    row("energy (uJ)", r.energy.total() / 1000.0, 1);
    row("dynamic energy (uJ)",
        r.energy.dynamicTotal() / 1000.0, 1);
    if (cfg.wayPrediction)
        row("way-pred accuracy", r.wayPredAccuracy);
    t.print(std::cout);
    return 0;
}
