/**
 * @file
 * Example: how physical-memory fragmentation affects SIPT.
 *
 * Reproduces the Sec. VII-B methodology interactively: conditions
 * memory at increasing levels of fragmentation (reported via the
 * unusable free space index), runs one application under SIPT with
 * the combined predictor, and shows huge-page coverage, prediction
 * accuracy, and IPC.
 *
 * Usage: fragmentation_study [app] (default calculix)
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "os/buddy_allocator.hh"
#include "os/fragmenter.hh"
#include "sim/system.hh"

int
main(int argc, char **argv)
{
    using namespace sipt;

    const std::string app = argc > 1 ? argv[1] : "calculix";

    std::cout << "Fragmentation sensitivity for " << app
              << " (SIPT 32KiB/2-way + combined predictor)\n\n";

    // First, show what the fragmenter does to the allocator.
    {
        os::BuddyAllocator buddy((4ull << 30) / pageSize);
        os::MemoryFragmenter frag(buddy);
        Rng rng(1);
        std::cout << "fresh allocator: Fu(9)="
                  << buddy.unusableFreeSpaceIndex(9)
                  << ", largest free order "
                  << buddy.largestFreeOrder() << "\n";
        frag.fragmentTo(0.95, 9, rng, 0.30);
        std::cout << "after fragmenter: Fu(9)="
                  << buddy.unusableFreeSpaceIndex(9)
                  << ", largest free order "
                  << buddy.largestFreeOrder() << ", free "
                  << buddy.freeFrames() * pageSize / (1 << 20)
                  << " MiB\n\n";
    }

    TextTable t({"condition", "huge%", "fast%", "IPC",
                 "IPC vs base", "energy vs base"});
    for (const auto cond :
         {sim::MemCondition::Normal,
          sim::MemCondition::Fragmented,
          sim::MemCondition::ThpOff,
          sim::MemCondition::NoContiguity}) {
        sim::SystemConfig base;
        base.condition = cond;
        base.measureRefs = sim::defaultMeasureRefs();
        const auto r_base = sim::runSingleCore(app, base);

        sim::SystemConfig cfg = base;
        cfg.l1Config = sim::L1Config::Sipt32K2;
        cfg.policy = IndexingPolicy::SiptCombined;
        const auto r = sim::runSingleCore(app, cfg);

        t.beginRow();
        t.add(sim::conditionName(cond));
        t.add(100.0 * r.hugeCoverage, 1);
        t.add(100.0 * r.fastFraction, 1);
        t.add(r.ipc, 3);
        t.add(r.ipc / r_base.ipc, 3);
        t.add(r.energy.total() / r_base.energy.total(), 3);
    }
    t.print(std::cout);

    std::cout << "\nExpected: fragmentation and THP-off shave a "
                 "little accuracy; only fully random placement "
                 "hurts noticeably (paper Fig. 18).\n";
    return 0;
}
